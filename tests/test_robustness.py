"""Robustness layer tests: outlier gate, idempotent ingest, data hygiene.

Four layers:

* gate mechanics — admit / clip / quarantine / corroborated release /
  eviction decisions, and exact JSON round-trip of the gate state (the
  crash-recovery prerequisite);
* dedup ledger + timestamp policy semantics;
* accuracy — a gated :class:`StreamTrainer` on a tail-corrupted stream
  beats the ungated model against clean ground truth (the
  ``scripts/bench_robustness.py`` claim, at test scale);
* server boundary over HTTP — NaN/±inf/negative values bounce with a
  structured 400 in both observation handlers, idempotency keys
  deduplicate, and the timestamp policy rejects with machine-readable
  codes.
"""

import json
import math

import numpy as np
import pytest

from repro.core import AdaptiveMatrixFactorization, AMFConfig, StreamTrainer
from repro.datasets.schema import QoSRecord
from repro.metrics.errors import mae
from repro.robustness import (
    DedupLedger,
    GateConfig,
    SanitizerGate,
    StaleObservation,
    TimestampPolicy,
    apply_observation,
)
from repro.server import PredictionClient, PredictionServer
from repro.server.client import TerminalServiceError


def identity_gate(**overrides) -> SanitizerGate:
    """Gate over the identity normalization: test values ARE normalized
    values, so thresholds can be reasoned about directly."""
    defaults = dict(
        warmup=2, ema=0.5, clip_k=2.0, quarantine_k=4.0, min_spread=0.1,
        quarantine_max=256, corroborate=3, corroborate_tol=0.05,
    )
    defaults.update(overrides)
    return SanitizerGate(GateConfig(**defaults), lambda v: v, lambda v: v)


def rec(value, user=0, service=0, t=0.0) -> QoSRecord:
    return QoSRecord(timestamp=t, user_id=user, service_id=service, value=value)


def warm(gate, value=0.5, n=2, user=0, service=0):
    """Feed ``n`` identical samples: with warmup=2 the entity bands settle
    at center=value, spread=min_spread."""
    for k in range(n):
        decision = gate.process(rec(value, user=user, service=service, t=float(k)))
        assert decision.action == "admit"


class TestGateDecisions:
    def test_warmup_admits_everything(self):
        gate = identity_gate(warmup=3)
        for value in (0.5, 0.01, 0.99):  # wildly inconsistent, all admitted
            assert gate.process(rec(value)).action == "admit"
        assert gate.counts["admitted"] == 3

    def test_in_band_admit(self):
        gate = identity_gate()
        warm(gate)
        decision = gate.process(rec(0.55, t=2.0))
        assert decision.action == "admit"
        assert decision.value == 0.55
        assert decision.score == pytest.approx(0.5)  # |0.55-0.5| / 0.1

    def test_out_of_band_clip(self):
        gate = identity_gate()
        warm(gate)
        # score 2.5: past clip_k=2, short of quarantine_k=4.  The band is
        # center ± clip_k * spread = [0.3, 0.7].
        decision = gate.process(rec(0.75, t=2.0))
        assert decision.action == "clip"
        assert decision.value == pytest.approx(0.7)
        assert gate.counts["clipped"] == 1

    def test_wild_value_quarantined_not_applied(self):
        gate = identity_gate()
        warm(gate)
        decision = gate.process(rec(0.95, t=2.0))
        assert decision.action == "quarantine"
        assert decision.released == []
        assert gate.quarantine_size == 1
        # Quarantine must not move the entity bands: a follow-up in-band
        # sample is still judged against the old center.
        assert gate.process(rec(0.5, t=3.0)).action == "admit"

    def test_corroborated_release(self):
        gate = identity_gate()
        warm(gate)
        assert gate.process(rec(0.95, t=2.0)).action == "quarantine"
        assert gate.process(rec(0.96, t=3.0)).action == "quarantine"
        decision = gate.process(rec(0.94, t=4.0))
        assert decision.action == "release"
        # The two held samples come back, oldest first; the current one is
        # the caller's to apply.
        assert [r.value for r in decision.released] == [0.95, 0.96]
        assert [r.timestamp for r in decision.released] == [2.0, 3.0]
        assert gate.quarantine_size == 0
        assert gate.counts["released"] == 3
        # The trackers chased the new level: the next extreme is in-band.
        assert gate.process(rec(0.95, t=5.0)).action in ("admit", "clip")

    def test_inconsistent_extreme_restarts_the_group(self):
        gate = identity_gate()
        warm(gate)
        assert gate.process(rec(0.95, t=2.0)).action == "quarantine"
        # 2.0 is extreme but nowhere near the pending 0.95 group: the group
        # was noise, drop it and start over from the new sample.
        assert gate.process(rec(2.0, t=3.0)).action == "quarantine"
        assert gate.counts["evicted"] == 1
        assert gate.quarantine_size == 1

    def test_bounded_quarantine_evicts_oldest_pair(self):
        gate = identity_gate(quarantine_max=2)
        for pair in range(3):
            warm(gate, user=pair, service=pair)
        for k, pair in enumerate(range(3)):
            gate.process(rec(0.95, user=pair, service=pair, t=10.0 + k))
        assert gate.quarantine_size == 2  # pair 0 aged out
        assert gate.counts["evicted"] == 1
        assert gate.counts["quarantined"] == 3

    def test_config_validation(self):
        with pytest.raises(ValueError, match="quarantine_k"):
            GateConfig(clip_k=4.0, quarantine_k=2.0)
        with pytest.raises(ValueError, match="warmup"):
            GateConfig(warmup=0)
        with pytest.raises(ValueError, match="ema"):
            GateConfig(ema=0.0)
        with pytest.raises(ValueError, match="corroborate"):
            GateConfig(corroborate=1)

    def test_single_sample_influence_is_bounded(self):
        """One clipped extreme moves the center by at most
        ema * clip_k * spread — the robustness invariant."""
        gate = identity_gate()
        warm(gate)
        center_before = gate._users[0].center
        spread_before = max(gate._users[0].spread, gate.config.min_spread)
        gate.process(rec(0.79, t=2.0))  # score 2.9: clipped
        moved = abs(gate._users[0].center - center_before)
        assert moved <= gate.config.ema * gate.config.clip_k * spread_before + 1e-12


class TestGateStateRoundTrip:
    def drive(self, gate, values, t0=0.0):
        return [
            gate.process(rec(v, t=t0 + k)).action for k, v in enumerate(values)
        ]

    def test_json_round_trip_preserves_future_decisions(self):
        history = [0.5, 0.5, 0.55, 0.75, 0.95, 0.96, 0.94, 0.5, 2.0, 0.45]
        future = [0.5, 0.93, 0.94, 0.95, 0.6, 3.0, 0.5, 0.97]
        original = identity_gate()
        self.drive(original, history)
        # The snapshot crosses JSON exactly as it does inside a checkpoint.
        snapshot = json.loads(json.dumps(original.state_dict()))
        restored = identity_gate()
        restored.restore(snapshot)
        assert restored.state_dict() == original.state_dict()
        assert restored.quarantine_size == original.quarantine_size
        assert restored.counts == original.counts
        # Identical futures: same decisions, bit-identical final state.
        assert (
            self.drive(restored, future, t0=100.0)
            == self.drive(original, future, t0=100.0)
        )
        assert restored.state_dict() == original.state_dict()


class TestDedupLedger:
    def test_seen_and_add(self):
        ledger = DedupLedger(capacity=8)
        assert not ledger.seen("a")
        ledger.add("a")
        assert ledger.seen("a")
        assert len(ledger) == 1

    def test_bounded_eviction_is_fifo(self):
        ledger = DedupLedger(capacity=2)
        for key in ("a", "b", "c"):
            ledger.add(key)
        assert not ledger.seen("a")  # evicted: a very late retry re-applies
        assert ledger.seen("b") and ledger.seen("c")

    def test_state_round_trip(self):
        ledger = DedupLedger(capacity=4)
        for key in ("x", "y", "z"):
            ledger.add(key)
        clone = DedupLedger()
        clone.restore(json.loads(json.dumps(ledger.state_dict())))
        assert clone.capacity == 4
        assert clone.state_dict() == ledger.state_dict()
        clone.add("w")
        clone.add("v")  # eviction order survived the round trip
        assert not clone.seen("x")

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            DedupLedger(capacity=0)


class TestDedupEvictionVsWalTail:
    """FIFO eviction must stay coherent with crash recovery: a key the WAL
    tail would replay after a crash has to still be in the live ledger, and
    the ledger rebuilt from checkpoint + tail must equal the pre-crash one
    (eviction applied in the same order during replay as it was live)."""

    def _keyed_server(self, data_dir, capacity=16, interval=8):
        server = PredictionServer(
            data_dir=str(data_dir),
            rng=0,
            background_replay=False,
            checkpoint_interval=interval,
            dedup_capacity=capacity,
        )
        server.start()
        return server

    @staticmethod
    def _post_keyed(client, n, prefix="evict"):
        for k in range(n):
            client.report_observation(
                k % 7, k % 9, 0.5 + (k % 5) * 0.2, float(k),
                idempotency_key=f"{prefix}:{k}",
            )

    def test_eviction_spares_every_key_in_the_live_wal_tail(self, tmp_path):
        # capacity (16) exceeds the checkpoint interval (8), so the keys the
        # post-checkpoint WAL tail carries are always younger than anything
        # FIFO eviction has discarded.
        server = self._keyed_server(tmp_path)
        try:
            client = PredictionClient(server.address)
            self._post_keyed(client, 43)
            checkpoint_seq = server._checkpoints.load()[1]
            assert checkpoint_seq == 40
            tail = server._wal.read_committed(after_seq=checkpoint_seq)
            assert len(tail) == 3
            for __, __, key in tail:
                assert server.ledger.seen(key)
            # ... while the oldest keys were in fact evicted (bounded memory).
            assert not server.ledger.seen("evict:0")
            assert len(server.ledger) == 16
        finally:
            server.stop()

    def test_ledger_rebuilt_from_wal_matches_pre_crash_one(self, tmp_path):
        server = self._keyed_server(tmp_path)
        client = PredictionClient(server.address)
        self._post_keyed(client, 43)
        pre_crash = server.ledger.state_dict()
        server.kill()  # no final checkpoint: the tail lives only in the WAL

        recovered = self._keyed_server(tmp_path)
        try:
            assert recovered.ledger.state_dict() == pre_crash
            # A late duplicate of a tail key is still absorbed after recovery.
            updates_before = recovered.model.updates_applied
            duplicate_error = PredictionClient(recovered.address).report_observation(
                42 % 7, 42 % 9, 99.0, 42.0, idempotency_key="evict:42"
            )
            assert duplicate_error != duplicate_error  # NaN: deduplicated
            assert recovered.model.updates_applied == updates_before
        finally:
            recovered.stop()

    def test_replayed_eviction_preserves_fifo_order(self, tmp_path):
        # More keyed records since the checkpoint than the ledger holds:
        # replay must evict in arrival order, ending with the newest keys.
        server = self._keyed_server(tmp_path, capacity=4, interval=100)
        client = PredictionClient(server.address)
        self._post_keyed(client, 10)
        pre_crash = server.ledger.state_dict()
        assert pre_crash["keys"] == [f"evict:{k}" for k in (6, 7, 8, 9)]
        server.kill()

        recovered = self._keyed_server(tmp_path, capacity=4, interval=100)
        try:
            assert recovered.ledger.state_dict() == pre_crash
        finally:
            recovered.stop()


class TestTimestampPolicy:
    def test_first_observation_always_passes(self):
        TimestampPolicy(max_future_skew=0.0, max_staleness=0.0).check(1e9, None)

    def test_future_skew(self):
        policy = TimestampPolicy(max_future_skew=5.0)
        policy.check(104.9, latest=100.0)
        with pytest.raises(StaleObservation) as exc:
            policy.check(106.0, latest=100.0)
        assert exc.value.reason == "future"

    def test_staleness(self):
        policy = TimestampPolicy(max_staleness=10.0)
        policy.check(90.0, latest=100.0)
        with pytest.raises(StaleObservation) as exc:
            policy.check(89.0, latest=100.0)
        assert exc.value.reason == "stale"

    def test_defaults_disable_both_checks(self):
        TimestampPolicy().check(-1e12, latest=1e12)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_staleness"):
            TimestampPolicy(max_staleness=-1.0)
        with pytest.raises(ValueError, match="max_future_skew"):
            TimestampPolicy(max_future_skew=float("nan"))


def make_truth(rng, n_users=16, n_services=24):
    user_profile = rng.uniform(0.5, 2.0, size=n_users)
    service_profile = rng.uniform(0.4, 2.5, size=n_services)
    return np.outer(user_profile, service_profile)


def make_stream(truth, n, corruption, rng):
    n_users, n_services = truth.shape
    records = []
    for k in range(n):
        u = int(rng.integers(n_users))
        s = int(rng.integers(n_services))
        value = float(truth[u, s] * (1.0 + rng.normal(0.0, 0.05)))
        if corruption and rng.random() < corruption:
            value *= float(rng.uniform(50.0, 500.0))
        records.append(rec(max(value, 1e-3), user=u, service=s, t=float(k)))
    return records


class TestGatedTraining:
    """The accuracy claim behind the gate, at test scale."""

    def train(self, records, gate_on, seed=0):
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=seed)
        gate = (
            SanitizerGate(GateConfig(), model.normalize_value, model.denormalize_value)
            if gate_on
            else None
        )
        report = StreamTrainer(model, gate=gate).process(records)
        return model, report

    def score(self, model, truth):
        predicted = model.predict_matrix()[: truth.shape[0], : truth.shape[1]]
        return mae(
            [float(v) for v in predicted.ravel()],
            [float(v) for v in truth.ravel()],
        )

    def test_gate_beats_ungated_on_corrupted_stream(self):
        rng = np.random.default_rng(0)
        truth = make_truth(rng)
        records = make_stream(truth, 3000, corruption=0.1, rng=rng)
        ungated_model, ungated_report = self.train(records, gate_on=False)
        gated_model, gated_report = self.train(records, gate_on=True)
        assert ungated_report.quarantined == 0
        assert gated_report.quarantined > 0
        assert self.score(gated_model, truth) < self.score(ungated_model, truth)

    def test_gate_is_free_on_a_clean_stream(self):
        rng = np.random.default_rng(1)
        truth = make_truth(rng)
        records = make_stream(truth, 2000, corruption=0.0, rng=rng)
        ungated_model, __ = self.train(records, gate_on=False)
        gated_model, __ = self.train(records, gate_on=True)
        clean = self.score(ungated_model, truth)
        assert self.score(gated_model, truth) <= clean * 1.05

    def test_apply_observation_without_gate_is_plain_observe(self):
        model = AdaptiveMatrixFactorization(rng=0)
        action, applied = apply_observation(model, None, rec(1.0))
        assert action == "admit"
        assert len(applied) == 1
        assert model.updates_applied == 1


@pytest.fixture()
def server():
    with PredictionServer(rng=0, background_replay=False, gate=True) as s:
        yield s


def post_observation(client, **overrides):
    payload = {"timestamp": 0.0, "user_id": 0, "service_id": 0, "value": 1.0}
    payload.update(overrides)
    return client._request("POST", "/observations", payload, idempotent=False)


class TestServerBoundary:
    """API-boundary hygiene over real HTTP."""

    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), float("-inf"), -1.0]
    )
    def test_bad_values_bounce_with_structured_400(self, server, value):
        client = PredictionClient(server.address)
        with pytest.raises(TerminalServiceError) as exc:
            post_observation(client, value=value)
        assert exc.value.status == 400
        assert exc.value.body["code"] == "invalid_value"
        assert server.model.updates_applied == 0

    def test_bad_timestamp_bounces(self, server):
        client = PredictionClient(server.address)
        with pytest.raises(TerminalServiceError) as exc:
            post_observation(client, timestamp=float("nan"))
        assert exc.value.status == 400
        assert exc.value.body["code"] == "invalid_timestamp"

    def test_batch_rejects_bad_values_per_item(self, server):
        client = PredictionClient(server.address)
        result = client.report_observations_detailed(
            [
                {"timestamp": 0.0, "user_id": 0, "service_id": 0, "value": 1.0},
                {"timestamp": 1.0, "user_id": 0, "service_id": 1,
                 "value": float("nan")},
                {"timestamp": 2.0, "user_id": 0, "service_id": 2, "value": -3.0},
                {"timestamp": 3.0, "user_id": 0, "service_id": 3, "value": 2.0},
            ]
        )
        assert result["accepted"] == 2
        assert [item["index"] for item in result["rejected"]] == [1, 2]
        assert all("value" in item["error"] for item in result["rejected"])
        assert server.model.updates_applied == 2

    def test_idempotency_key_deduplicates(self, server):
        client = PredictionClient(server.address)
        first = client.report_observation(0, 0, 1.5, 0.0, idempotency_key="m:1")
        assert math.isfinite(first)
        assert server.model.updates_applied == 1
        retry = client.report_observation(0, 0, 1.5, 0.0, idempotency_key="m:1")
        assert math.isnan(retry)  # acknowledged, not re-applied
        assert server.model.updates_applied == 1
        status = client.status()["robustness"]["dedup"]
        assert status["deduplicated"] == 1
        assert status["ledger_size"] == 1
        # A fresh key is a fresh measurement.
        client.report_observation(0, 0, 1.5, 1.0, idempotency_key="m:2")
        assert server.model.updates_applied == 2

    @pytest.mark.parametrize("key", ["", "x" * 257, 7])
    def test_invalid_idempotency_key(self, server, key):
        client = PredictionClient(server.address)
        with pytest.raises(TerminalServiceError) as exc:
            post_observation(client, idempotency_key=key)
        assert exc.value.body["code"] == "invalid_idempotency_key"

    def test_timestamp_policy_over_http(self):
        policy = TimestampPolicy(max_future_skew=5.0, max_staleness=10.0)
        with PredictionServer(
            rng=0, background_replay=False, timestamp_policy=policy
        ) as server:
            client = PredictionClient(server.address)
            client.report_observation(0, 0, 1.0, 100.0)
            with pytest.raises(TerminalServiceError) as exc:
                post_observation(client, timestamp=80.0)
            assert exc.value.body["code"] == "stale_timestamp"
            with pytest.raises(TerminalServiceError) as exc:
                post_observation(client, timestamp=200.0)
            assert exc.value.body["code"] == "future_timestamp"
            # Rejections must not advance the stream head.
            client.report_observation(0, 1, 1.0, 99.0)

    def test_status_exposes_robustness_block(self, server):
        client = PredictionClient(server.address)
        client.report_observation(0, 0, 1.0, 0.0)
        robustness = client.status()["robustness"]
        assert robustness["gate"]["admitted"] == 1
        assert robustness["gate"]["quarantine_size"] == 0
        assert robustness["dedup"]["ledger_size"] == 0
        assert robustness["timestamp_policy"] is None
        assert robustness["admission"] is None
