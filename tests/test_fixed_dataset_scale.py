"""Tests for running experiments against pre-loaded (real-format) data."""

import numpy as np
import pytest

from repro.datasets import generate_dataset
from repro.datasets.wsdream import load_wsdream_directory
from repro.experiments.runner import FixedDatasetScale
from repro.experiments.accuracy import run_table1
from repro.experiments.density_impact import run_density_impact


@pytest.fixture(scope="module")
def tensors():
    rt = generate_dataset(n_users=30, n_services=60, n_slices=2, seed=9)
    tp = generate_dataset(n_users=30, n_services=60, n_slices=2, seed=9, attribute="tp")
    return rt, tp


class TestConstruction:
    def test_shape_properties(self, tensors):
        rt, tp = tensors
        scale = FixedDatasetScale.from_tensors(rt, tp, reruns=1, seed=1)
        assert (scale.n_users, scale.n_services, scale.n_slices) == (30, 60, 2)

    def test_requires_at_least_one_tensor(self):
        with pytest.raises(ValueError, match="at least one"):
            FixedDatasetScale.from_tensors()

    def test_shape_mismatch_rejected(self, tensors):
        rt, __ = tensors
        other = generate_dataset(n_users=10, n_services=60, n_slices=2, seed=9)
        with pytest.raises(ValueError, match="shape"):
            FixedDatasetScale.from_tensors(rt, other)

    def test_dataset_aliases(self, tensors):
        rt, tp = tensors
        scale = FixedDatasetScale.from_tensors(rt, tp)
        assert scale.dataset("rt") is rt
        assert scale.dataset("throughput") is tp

    def test_missing_attribute_named(self, tensors):
        rt, __ = tensors
        scale = FixedDatasetScale.from_tensors(response_time=rt)
        with pytest.raises(KeyError, match="throughput"):
            scale.dataset("tp")

    def test_with_updates(self, tensors):
        rt, __ = tensors
        scale = FixedDatasetScale.from_tensors(response_time=rt, reruns=1)
        assert scale.with_updates(reruns=5).reruns == 5


class TestExperimentsRunOnFixedData:
    def test_table1(self, tensors):
        rt, __ = tensors
        scale = FixedDatasetScale.from_tensors(response_time=rt, reruns=1, seed=1)
        result = run_table1(
            scale,
            densities=(0.3,),
            attributes=("response_time",),
            approaches=["UIPCC", "AMF"],
        )
        cell = result.results["response_time"][0.3]
        assert np.isfinite(cell["AMF"].metrics["MRE"])

    def test_density_impact(self, tensors):
        rt, __ = tensors
        scale = FixedDatasetScale.from_tensors(response_time=rt, reruns=1, seed=1)
        result = run_density_impact(scale, densities=(0.2, 0.4))
        assert len(result.metrics["MRE"]) == 2

    def test_wsdream_files_through_experiments(self, tmp_path):
        """The real-format loader feeds the experiment pipeline end to end."""
        rng = np.random.default_rng(3)
        lines = []
        for t in range(2):
            for u in range(20):
                for s in range(30):
                    if rng.random() < 0.8:
                        lines.append(f"{u} {s} {t} {rng.uniform(0.05, 8.0):.4f}")
        (tmp_path / "rtdata.txt").write_text("\n".join(lines))
        data = load_wsdream_directory(str(tmp_path))
        scale = FixedDatasetScale.from_tensors(response_time=data, reruns=1, seed=2)
        result = run_table1(
            scale, densities=(0.3,), attributes=("response_time",), approaches=["AMF"]
        )
        assert np.isfinite(
            result.results["response_time"][0.3]["AMF"].metrics["MRE"]
        )
