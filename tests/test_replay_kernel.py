"""Tests for the vectorized conflict-free replay kernel.

Covers the three claims the kernel rests on:

* the greedy partitioner never places two samples sharing a user or a
  service into the same block, covers every sample exactly once, and keeps
  per-entity draw order across blocks (hypothesis property tests);
* the vectorized kernel is statistically indistinguishable from the scalar
  reference — same seeded stream, same replay budget, matching relative
  error and factors;
* the supporting machinery (batched weight updates, the store's cached
  normalized values and entity indices) matches its sequential counterpart.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AdaptiveMatrixFactorization,
    AdaptiveWeights,
    AMFConfig,
    iter_conflict_free_blocks,
    partition_conflict_free,
)
from repro.core.amf import _SampleStore
from repro.datasets.schema import QoSRecord

id_pairs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=20),
    ),
    min_size=0,
    max_size=200,
)


class TestPartitioner:
    @given(pairs=id_pairs)
    @settings(max_examples=200, deadline=None)
    def test_blocks_are_conflict_free_and_cover_every_sample(self, pairs):
        users = np.array([u for u, _ in pairs], dtype=np.intp)
        services = np.array([s for _, s in pairs], dtype=np.intp)
        blocks = partition_conflict_free(users, services)
        assert blocks.shape == users.shape
        for block_id in np.unique(blocks):
            member = blocks == block_id
            block_users = users[member]
            block_services = services[member]
            # No user and no service appears twice within one block.
            assert len(np.unique(block_users)) == block_users.size
            assert len(np.unique(block_services)) == block_services.size

    @given(pairs=id_pairs)
    @settings(max_examples=200, deadline=None)
    def test_per_entity_draw_order_is_preserved(self, pairs):
        """Samples sharing an entity land in strictly increasing blocks."""
        users = np.array([u for u, _ in pairs], dtype=np.intp)
        services = np.array([s for _, s in pairs], dtype=np.intp)
        blocks = partition_conflict_free(users, services).tolist()
        last_seen: dict[tuple[str, int], int] = {}
        for k, block in enumerate(blocks):
            for key in (("u", int(users[k])), ("s", int(services[k]))):
                if key in last_seen:
                    assert block > last_seen[key]
                last_seen[key] = block

    @given(pairs=id_pairs)
    @settings(max_examples=100, deadline=None)
    def test_block_ids_are_dense_from_zero(self, pairs):
        users = np.array([u for u, _ in pairs], dtype=np.intp)
        services = np.array([s for _, s in pairs], dtype=np.intp)
        blocks = partition_conflict_free(users, services)
        if blocks.size:
            assert blocks.min() == 0
            assert set(np.unique(blocks).tolist()) == set(range(blocks.max() + 1))

    @given(pairs=id_pairs)
    @settings(max_examples=100, deadline=None)
    def test_iter_blocks_yields_a_permutation(self, pairs):
        users = np.array([u for u, _ in pairs], dtype=np.intp)
        services = np.array([s for _, s in pairs], dtype=np.intp)
        chunks = list(iter_conflict_free_blocks(users, services))
        covered = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.intp)
        assert sorted(covered.tolist()) == list(range(users.size))
        for chunk in chunks:
            assert len(np.unique(users[chunk])) == chunk.size
            assert len(np.unique(services[chunk])) == chunk.size

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            partition_conflict_free([0, 1], [0])

    def test_invalid_tables_rejected(self):
        with pytest.raises(ValueError, match="tables"):
            partition_conflict_free([0], [0], tables="list")

    @given(pairs=id_pairs)
    @settings(max_examples=200, deadline=None)
    def test_dense_and_dict_tables_agree(self, pairs):
        """Both bookkeeping structures must produce identical schedules."""
        users = np.array([u for u, _ in pairs], dtype=np.intp)
        services = np.array([s for _, s in pairs], dtype=np.intp)
        dense = partition_conflict_free(users, services, tables="dense")
        sparse = partition_conflict_free(users, services, tables="dict")
        auto = partition_conflict_free(users, services, tables="auto")
        np.testing.assert_array_equal(dense, sparse)
        np.testing.assert_array_equal(dense, auto)

    def test_sparse_large_ids_do_not_allocate_dense_tables(self):
        """Regression: one sample with user id 10**9 used to allocate a
        dense ``[-1] * (10**9 + 1)`` table (gigabytes) before scheduling.
        With dict tables the schedule completes instantly and keeps the
        conflict-free invariants."""
        rng = np.random.default_rng(3)
        users = rng.integers(0, 10**9, size=500)
        services = rng.integers(0, 10**9, size=500)
        blocks = partition_conflict_free(users, services)
        assert blocks.shape == (500,)
        for block_id in np.unique(blocks):
            member = blocks == block_id
            assert len(np.unique(users[member])) == int(member.sum())
            assert len(np.unique(services[member])) == int(member.sum())

    def test_auto_picks_dense_for_compact_ids(self):
        # Indirect but cheap check: dense and auto agree on compact ids
        # (the parity property above) and auto stays fast on huge ids
        # (the regression above); here we just pin the threshold contract.
        users = list(range(100))
        services = list(range(100))
        blocks = partition_conflict_free(users, services, tables="auto")
        assert blocks.tolist() == [0] * 100


def _drive(kernel: str, *, seed: int = 11, epochs: int = 12):
    """Observe a seeded stream, then replay with the requested kernel."""
    model = AdaptiveMatrixFactorization(
        AMFConfig.for_response_time(kernel=kernel), rng=seed
    )
    rng = np.random.default_rng(seed)
    n_samples = 600
    users = rng.integers(0, 40, n_samples)
    services = rng.integers(0, 60, n_samples)
    values = rng.random(n_samples) * 19.0 + 0.05
    for k in range(n_samples):
        model.observe(
            QoSRecord(
                timestamp=0.0,
                user_id=int(users[k]),
                service_id=int(services[k]),
                value=float(values[k]),
            )
        )
    for _ in range(epochs):
        model.replay_many(0.0, model.n_stored_samples)
    return model


class TestKernelParity:
    def test_kernels_converge_to_indistinguishable_error(self):
        """Same seeded stream + budget => statistically identical MRE.

        The kernels consume identical RNG draws, and conflict-free blocks
        commute, so the trained states differ only by floating-point
        summation order.
        """
        scalar = _drive("scalar")
        vectorized = _drive("vectorized")
        scalar_error = scalar.training_error()
        vectorized_error = vectorized.training_error()
        assert scalar_error == pytest.approx(vectorized_error, rel=1e-6)
        np.testing.assert_allclose(
            scalar.predict_matrix(), vectorized.predict_matrix(), rtol=1e-5, atol=1e-7
        )
        assert scalar.updates_applied == vectorized.updates_applied

    def test_replay_many_returns_matching_counters(self):
        scalar = _drive("scalar", epochs=0)
        vectorized = _drive("vectorized", epochs=0)
        applied_s, expired_s, error_s = scalar.replay_many(0.0, 500)
        applied_v, expired_v, error_v = vectorized.replay_many(0.0, 500)
        assert applied_s == applied_v
        assert expired_s == expired_v == 0
        assert error_s == pytest.approx(error_v, rel=1e-9)

    def test_vectorized_discards_expired_samples(self):
        model = _drive("vectorized", epochs=0)
        stored = model.n_stored_samples
        expiry = model.config.expiry_seconds
        applied, expired, __ = model.replay_many(expiry + 1.0, 4 * stored)
        assert applied == 0
        assert expired > 0
        assert model.n_stored_samples == stored - expired

    def test_kernel_override_beats_config(self):
        model = _drive("scalar", epochs=0)
        applied, __, error = model.replay_many(0.0, 64, kernel="vectorized")
        assert applied == 64
        assert np.isfinite(error)

    def test_invalid_kernel_rejected(self):
        model = _drive("scalar", epochs=0)
        with pytest.raises(ValueError, match="kernel"):
            model.replay_many(0.0, 10, kernel="simd")
        with pytest.raises(ValueError, match="kernel"):
            AMFConfig.for_response_time(kernel="simd")


class TestObserveMany:
    def test_matches_sequential_observe(self):
        """Batched weight updates == sequential, given unique ids per batch."""
        sequential = AdaptiveWeights(beta=0.3)
        batched = AdaptiveWeights(beta=0.3)
        rng = np.random.default_rng(3)
        for _ in range(25):
            users = rng.permutation(30)[:8]
            services = rng.permutation(40)[:8]
            errors = rng.random(8) * 2.0
            expected = np.array(
                [
                    sequential.observe(int(u), int(s), float(e))
                    for u, s, e in zip(users, services, errors)
                ]
            )
            w_u, w_s = batched.observe_many(users, services, errors)
            np.testing.assert_allclose(w_u, expected[:, 0], rtol=1e-12)
            np.testing.assert_allclose(w_s, expected[:, 1], rtol=1e-12)
        np.testing.assert_allclose(
            sequential.user_error_snapshot(), batched.user_error_snapshot()
        )
        np.testing.assert_allclose(
            sequential.service_error_snapshot(), batched.service_error_snapshot()
        )

    def test_rejects_mismatched_lengths(self):
        weights = AdaptiveWeights()
        with pytest.raises(ValueError):
            weights.observe_many([0, 1], [0], [0.5, 0.5])

    def test_rejects_negative_errors(self):
        weights = AdaptiveWeights()
        with pytest.raises(ValueError):
            weights.observe_many([0], [0], [-0.1])


class TestStoreKernelSupport:
    def test_norm_is_cached_at_put_time(self):
        store = _SampleStore()
        store.put(3, 4, 10.0, 1.5, 0.25)
        assert store.norm(3, 4) == 0.25
        assert store.get(3, 4) == (10.0, 1.5)

    def test_put_without_norm_defaults_to_nan(self):
        store = _SampleStore()
        store.put(0, 1, 0.0, 2.0)
        assert np.isnan(store.norm(0, 1))

    def test_columns_align_after_discards(self):
        store = _SampleStore()
        for k in range(10):
            store.put(k, k + 100, float(k), float(k) / 10.0, float(k) / 100.0)
        store.discard(0, 100)
        store.discard(5, 105)
        users, services, timestamps, values, norms = store.columns()
        assert len(store) == 8
        for position, key in enumerate(store.keys()):
            assert (int(users[position]), int(services[position])) == key
            assert timestamps[position] == float(key[0])
            assert values[position] == key[0] / 10.0
            assert norms[position] == key[0] / 100.0

    def test_drop_user_and_service_use_indices(self):
        store = _SampleStore()
        for u in range(4):
            for s in range(5):
                store.put(u, s, 0.0, 1.0, 0.1)
        assert store.drop_user(2) == 5
        assert all(key[0] != 2 for key in store.keys())
        assert store.drop_service(3) == 3  # user 2's copy already gone
        assert all(key[1] != 3 for key in store.keys())
        assert len(store) == 12
        # Index stays consistent: dropping again is a no-op.
        assert store.drop_user(2) == 0
        assert store.drop_service(3) == 0

    def test_purge_expired_single_sweep(self):
        store = _SampleStore()
        for k in range(20):
            store.put(k, 0 if k % 2 else 1, float(k), 1.0, 0.1)
        dropped = store.purge_expired(now=25.0, expiry_seconds=10.0)
        assert dropped == 16  # timestamps 0..14 are stale (25 - t >= 10)
        assert len(store) == 4
        assert sorted(key[0] for key in store.keys()) == [16, 17, 18, 19]
        users, services, timestamps, __, __ = store.columns()
        for position, key in enumerate(store.keys()):
            assert (int(users[position]), int(services[position])) == key
            assert timestamps[position] >= 16.0
