"""Tests for the invocation workload generators."""

import numpy as np
import pytest

from repro.simulation.workload import (
    Invocation,
    drive_engines,
    merge_workloads,
    periodic_arrivals,
    poisson_arrivals,
)


class TestInvocation:
    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            Invocation(timestamp=-1.0, user_id=0)
        with pytest.raises(ValueError):
            Invocation(timestamp=0.0, user_id=-1)


class TestPoissonArrivals:
    def test_rate_approximated(self):
        arrivals = poisson_arrivals(rate_per_second=0.5, duration=10_000.0, rng=0)
        assert len(arrivals) == pytest.approx(5000, rel=0.1)

    def test_within_window(self):
        arrivals = poisson_arrivals(0.1, duration=100.0, start=50.0, rng=0)
        for invocation in arrivals:
            assert 50.0 <= invocation.timestamp < 150.0

    def test_time_ordered(self):
        stamps = [inv.timestamp for inv in poisson_arrivals(1.0, 500.0, rng=1)]
        assert stamps == sorted(stamps)

    def test_exponential_gaps(self):
        arrivals = poisson_arrivals(1.0, 5000.0, rng=2)
        gaps = np.diff([inv.timestamp for inv in arrivals])
        assert gaps.mean() == pytest.approx(1.0, rel=0.1)
        # Exponential: std ~ mean (coefficient of variation ~ 1).
        assert gaps.std() == pytest.approx(gaps.mean(), rel=0.2)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10.0)
        with pytest.raises(ValueError):
            poisson_arrivals(1.0, 0.0)

    def test_deterministic(self):
        a = poisson_arrivals(0.5, 100.0, rng=3)
        b = poisson_arrivals(0.5, 100.0, rng=3)
        assert [x.timestamp for x in a] == [x.timestamp for x in b]


class TestPeriodicArrivals:
    def test_count(self):
        arrivals = periodic_arrivals(period=10.0, duration=100.0)
        assert len(arrivals) == 10

    def test_no_jitter_exact(self):
        arrivals = periodic_arrivals(period=10.0, duration=30.0, start=5.0)
        assert [inv.timestamp for inv in arrivals] == [5.0, 15.0, 25.0]

    def test_jitter_bounded(self):
        arrivals = periodic_arrivals(
            period=10.0, duration=200.0, jitter_fraction=0.3, rng=0
        )
        for k, invocation in enumerate(arrivals):
            assert invocation.timestamp >= 0.0
        stamps = [inv.timestamp for inv in arrivals]
        assert stamps == sorted(stamps)

    def test_invalid_jitter(self):
        with pytest.raises(ValueError):
            periodic_arrivals(10.0, 100.0, jitter_fraction=1.5)


class TestMergeAndDrive:
    def test_merge_orders_by_time(self):
        a = periodic_arrivals(10.0, 50.0, user_id=0)
        b = periodic_arrivals(7.0, 50.0, user_id=1)
        merged = merge_workloads(a, b)
        stamps = [inv.timestamp for inv in merged]
        assert stamps == sorted(stamps)
        assert len(merged) == len(a) + len(b)

    def test_drive_engines_dispatches(self):
        executed = {0: [], 1: []}

        class StubEngine:
            def __init__(self, user_id):
                self.user_id = user_id

            def execute_once(self, now):
                executed[self.user_id].append(now)

        workload = merge_workloads(
            periodic_arrivals(10.0, 30.0, user_id=0),
            periodic_arrivals(15.0, 30.0, user_id=1),
        )
        count = drive_engines({0: StubEngine(0), 1: StubEngine(1)}, workload)
        assert count == len(workload)
        assert len(executed[0]) == 3
        assert len(executed[1]) == 2

    def test_drive_unknown_user_raises(self):
        workload = [Invocation(timestamp=0.0, user_id=9)]
        with pytest.raises(KeyError, match="9"):
            drive_engines({}, workload)
