"""Tests for StreamTrainer (the Algorithm 1 driver) and TrainReport."""

import numpy as np
import pytest

from repro.core import AdaptiveMatrixFactorization, AMFConfig, StreamTrainer
from repro.datasets.schema import QoSRecord
from repro.datasets.stream import QoSStream


def make_records(n=50, n_users=5, n_services=8, seed=0, t0=0.0):
    rng = np.random.default_rng(seed)
    return [
        QoSRecord(
            timestamp=t0 + float(k),
            user_id=int(rng.integers(n_users)),
            service_id=int(rng.integers(n_services)),
            value=float(rng.uniform(0.2, 3.0)),
        )
        for k in range(n)
    ]


class TestConstruction:
    def test_invalid_tolerance(self):
        model = AdaptiveMatrixFactorization(rng=0)
        with pytest.raises(ValueError):
            StreamTrainer(model, tolerance=0.0)

    def test_invalid_patience(self):
        model = AdaptiveMatrixFactorization(rng=0)
        with pytest.raises(ValueError, match="patience"):
            StreamTrainer(model, patience=0)

    def test_invalid_max_epochs(self):
        model = AdaptiveMatrixFactorization(rng=0)
        with pytest.raises(ValueError, match="max_epochs"):
            StreamTrainer(model, max_epochs=0)


class TestConsume:
    def test_counts_arrivals(self):
        model = AdaptiveMatrixFactorization(rng=0)
        report = StreamTrainer(model).consume(make_records(30))
        assert report.arrivals == 30
        assert report.replays == 0
        assert model.updates_applied == 30

    def test_empty_stream(self):
        model = AdaptiveMatrixFactorization(rng=0)
        report = StreamTrainer(model).consume([])
        assert report.arrivals == 0
        assert np.isnan(report.final_error)


class TestReplayUntilConverged:
    def test_converges_on_consistent_data(self):
        model = AdaptiveMatrixFactorization(rng=0)
        trainer = StreamTrainer(model)
        trainer.consume(make_records(100))
        report = trainer.replay_until_converged(now=0.0)
        assert report.converged
        assert report.epochs >= 3  # at least patience + 1
        assert len(report.error_trace) == report.epochs

    def test_error_trace_decreases_overall(self):
        model = AdaptiveMatrixFactorization(rng=0)
        trainer = StreamTrainer(model)
        trainer.consume(make_records(200))
        report = trainer.replay_until_converged(now=0.0)
        assert report.error_trace[-1] < report.error_trace[0]

    def test_max_epochs_cap(self):
        model = AdaptiveMatrixFactorization(rng=0)
        trainer = StreamTrainer(model, tolerance=1e-12, min_epochs=1, max_epochs=4, patience=99)
        trainer.consume(make_records(50))
        report = trainer.replay_until_converged(now=0.0)
        assert report.epochs == 4
        assert not report.converged

    def test_max_epochs_below_min_rejected(self):
        model = AdaptiveMatrixFactorization(rng=0)
        with pytest.raises(ValueError, match="min_epochs"):
            StreamTrainer(model, min_epochs=5, max_epochs=4)

    def test_min_epochs_guards_saddle(self):
        """The plateau check must not fire during the first min_epochs, even
        if early improvements are tiny (the cold-start saddle)."""
        model = AdaptiveMatrixFactorization(rng=0)
        trainer = StreamTrainer(model, min_epochs=6, tolerance=0.99)  # everything "stalls"
        trainer.consume(make_records(100))
        report = trainer.replay_until_converged(now=0.0)
        assert report.epochs >= 6

    def test_replay_until_error_warm_model_is_cheap(self):
        """A model already below the target does zero replay epochs."""
        model = AdaptiveMatrixFactorization(rng=0)
        trainer = StreamTrainer(model)
        trainer.process(make_records(200))
        plateau = model.training_error()
        report = trainer.replay_until_error(now=0.0, target_error=plateau * 2.0)
        assert report.epochs == 0
        assert report.converged

    def test_replay_until_error_cold_model_climbs(self):
        model = AdaptiveMatrixFactorization(rng=0)
        trainer = StreamTrainer(model)
        trainer.consume(make_records(200))
        start_error = model.training_error()
        report = trainer.replay_until_error(now=0.0, target_error=start_error / 2.0)
        assert report.epochs >= 1
        assert report.converged
        assert model.training_error() <= start_error / 2.0

    def test_replay_until_error_unreachable_target(self):
        model = AdaptiveMatrixFactorization(rng=0)
        trainer = StreamTrainer(model)
        trainer.consume(make_records(60))
        report = trainer.replay_until_error(now=0.0, target_error=1e-12, max_epochs=3)
        assert report.epochs == 3
        assert not report.converged

    def test_replay_until_error_invalid_target(self):
        model = AdaptiveMatrixFactorization(rng=0)
        with pytest.raises(ValueError):
            StreamTrainer(model).replay_until_error(now=0.0, target_error=0.0)

    def test_empty_store_no_epochs(self):
        model = AdaptiveMatrixFactorization(rng=0)
        report = StreamTrainer(model).replay_until_converged(now=0.0)
        assert report.epochs == 0

    def test_expired_samples_counted_and_dropped(self):
        model = AdaptiveMatrixFactorization(rng=0)
        trainer = StreamTrainer(model)
        trainer.consume(make_records(40, t0=0.0))
        report = trainer.replay_until_converged(now=10_000.0)  # all stale
        assert report.expired > 0
        assert model.n_stored_samples < 40


class _NoOpReplayModel:
    """Stub exposing just what the replay loops touch, with a replay_many
    that never applies a step — the state a real model can only reach
    transiently (every drawn sample expires mid-batch)."""

    n_stored_samples = 10

    def __init__(self):
        self.calls = 0

    def purge_expired(self, now):
        return 0

    def replay_many(self, now, count, kernel=None):
        self.calls += 1
        return 0, count, float("nan")

    def training_error(self):
        return 1.0


class TestNoOpEpochCounting:
    """Regression: a batch that applied zero replay steps is not an epoch.

    Counting such batches inflated epochs-to-converge (the Fig. 13
    efficiency protocol) and could burn the whole max_epochs budget doing
    nothing."""

    def test_replay_until_converged_skips_no_op_epochs(self):
        model = _NoOpReplayModel()
        trainer = StreamTrainer(model)
        report = trainer.replay_until_converged(now=0.0)
        assert report.epochs == 0
        assert report.error_trace == []
        assert model.calls == 1  # one attempt, then stop — not max_epochs

    def test_replay_until_error_skips_no_op_epochs(self):
        model = _NoOpReplayModel()
        trainer = StreamTrainer(model)
        report = trainer.replay_until_error(now=0.0, target_error=0.5)
        assert report.epochs == 0
        assert report.error_trace == []
        assert not report.converged
        assert model.calls == 1


class TestProcess:
    def test_combines_consume_and_replay(self):
        model = AdaptiveMatrixFactorization(rng=0)
        report = StreamTrainer(model).process(make_records(80))
        assert report.arrivals == 80
        assert report.replays > 0
        assert report.wall_seconds > 0

    def test_default_now_is_last_arrival(self):
        """Samples just observed must not expire during the same process()."""
        model = AdaptiveMatrixFactorization(AMFConfig(expiry_seconds=60.0), rng=0)
        records = make_records(50, t0=0.0)  # timestamps 0..49, window 60
        report = StreamTrainer(model).process(records)
        assert report.expired == 0
        assert model.n_stored_samples == len({(r.user_id, r.service_id) for r in records})

    def test_explicit_now_expires(self):
        model = AdaptiveMatrixFactorization(AMFConfig(expiry_seconds=60.0), rng=0)
        report = StreamTrainer(model).process(make_records(50, t0=0.0), now=1000.0)
        assert model.n_stored_samples == 0

    def test_accepts_stream_object(self):
        model = AdaptiveMatrixFactorization(rng=0)
        stream = QoSStream(make_records(30))
        report = StreamTrainer(model).process(stream)
        assert report.arrivals == 30

    def test_incremental_processing_cheaper_than_cold(self):
        """Warm continuation takes fewer epochs than the cold start (the
        Fig. 13 property at trainer level)."""
        model = AdaptiveMatrixFactorization(rng=0)
        trainer = StreamTrainer(model)
        cold = trainer.process(make_records(300, seed=1))
        warm = trainer.process(make_records(300, seed=1, t0=1.0))
        assert warm.epochs <= cold.epochs
