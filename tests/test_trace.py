"""Tests for CSV trace persistence of QoS streams."""

import numpy as np
import pytest

from repro.datasets import generate_dataset, train_test_split_matrix
from repro.datasets.schema import QoSRecord
from repro.datasets.stream import QoSStream, stream_from_matrix
from repro.datasets.trace import load_stream, save_stream


def sample_stream(n=40, seed=0):
    rng = np.random.default_rng(seed)
    return QoSStream(
        QoSRecord(
            timestamp=float(rng.uniform(0, 900)),
            user_id=int(rng.integers(10)),
            service_id=int(rng.integers(20)),
            value=float(rng.uniform(0.01, 19.9)),
            slice_id=int(rng.integers(4)),
        )
        for __ in range(n)
    )


class TestRoundTrip:
    def test_lossless(self, tmp_path):
        stream = sample_stream()
        path = str(tmp_path / "trace.csv")
        count = save_stream(stream, path)
        assert count == len(stream)
        restored = load_stream(path)
        assert len(restored) == len(stream)
        for original, loaded in zip(stream, restored):
            assert loaded == original  # exact: repr() round-trips floats

    def test_empty_stream(self, tmp_path):
        path = str(tmp_path / "empty.csv")
        save_stream(QoSStream([]), path)
        assert len(load_stream(path)) == 0

    def test_accepts_record_list(self, tmp_path):
        path = str(tmp_path / "trace.csv")
        save_stream(sample_stream().records, path)
        assert len(load_stream(path)) == 40


class TestErrors:
    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            load_stream("/nonexistent/trace.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_stream(str(path))

    def test_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c,d\n1,2,3,4\n")
        with pytest.raises(ValueError, match="header"):
            load_stream(str(path))

    def test_malformed_row_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp,user_id,service_id,value,slice_id\n1,x,3,4,0\n")
        with pytest.raises(ValueError, match=":2"):
            load_stream(str(path))

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp,user_id,service_id,value,slice_id\n1,2\n")
        with pytest.raises(ValueError, match="fields"):
            load_stream(str(path))


class TestReplayFidelity:
    def test_recorded_run_retrains_identically(self, tmp_path):
        """Training from a loaded trace gives bit-identical factors."""
        from repro.core import AdaptiveMatrixFactorization, AMFConfig

        data = generate_dataset(n_users=15, n_services=30, n_slices=1, seed=1)
        train, __ = train_test_split_matrix(data.slice(0), 0.3, rng=1)
        stream = stream_from_matrix(train, rng=1)
        path = str(tmp_path / "run.csv")
        save_stream(stream, path)

        def train_model(records):
            model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=9)
            model.observe_many(list(records))
            return model.predict_matrix()

        np.testing.assert_array_equal(
            train_model(stream), train_model(load_stream(path))
        )
