"""Tests for the BiasedMF extension baseline."""

import numpy as np
import pytest

from repro.baselines import BiasedMF, BiasedMFConfig, PMF, PMFConfig
from repro.datasets import train_test_split_matrix
from repro.datasets.schema import QoSMatrix
from repro.metrics import mae, mre


class TestConfig:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("rank", 0),
            ("learning_rate", 0.0),
            ("regularization", -0.1),
            ("bias_regularization", -0.1),
            ("momentum", 2.0),
            ("max_iters", 0),
        ],
    )
    def test_invalid_fields(self, field, value):
        with pytest.raises(ValueError):
            BiasedMFConfig(**{field: value})


class TestTraining:
    def test_loss_decreases(self, rank_one_matrix):
        config = BiasedMFConfig(value_min=0.0, value_max=5.0, max_iters=80)
        model = BiasedMF(config, rng=0).fit(rank_one_matrix)
        assert model.loss_trace[-1] < model.loss_trace[0]

    def test_fits_additive_structure_exactly(self):
        """Pure row+column structure is what the biases are for."""
        rows = np.linspace(1.0, 3.0, 10)
        cols = np.linspace(0.5, 2.0, 15)
        values = rows[:, None] + cols[None, :]
        matrix = QoSMatrix.dense(values)
        train, test = train_test_split_matrix(matrix, 0.5, rng=0)
        config = BiasedMFConfig(value_min=0.0, value_max=6.0, max_iters=400)
        model = BiasedMF(config, rng=0).fit(train)
        r, c = test.observed_indices()
        assert mae(model.predict_entries(r, c), test.values[r, c]) < 0.15

    def test_beats_plain_pmf_on_twin(self, small_dataset):
        """The additive biases capture the user/service effects the twin
        bakes in, so BiasedMF must beat bias-free PMF."""
        matrix = small_dataset.slice(0)
        train, test = train_test_split_matrix(matrix, 0.3, rng=1)
        r, c = test.observed_indices()
        actual = test.values[r, c]
        pmf = PMF(PMFConfig(), rng=1).fit(train)
        biased = BiasedMF(BiasedMFConfig(), rng=1).fit(train)
        assert mre(biased.predict_entries(r, c), actual) < mre(
            pmf.predict_entries(r, c), actual
        )

    def test_predictions_in_range(self, small_dataset):
        matrix = small_dataset.slice(0)
        train, __ = train_test_split_matrix(matrix, 0.3, rng=0)
        predictions = BiasedMF(BiasedMFConfig(), rng=0).fit(train).predict_matrix()
        assert predictions.min() >= 0.0
        assert predictions.max() <= 20.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BiasedMF().predict_matrix()

    def test_empty_rejected(self):
        empty = QoSMatrix(values=np.zeros((2, 2)), mask=np.zeros((2, 2), dtype=bool))
        with pytest.raises(ValueError):
            BiasedMF().fit(empty)

    def test_deterministic(self, rank_one_matrix):
        config = BiasedMFConfig(value_min=0.0, value_max=5.0, max_iters=30)
        a = BiasedMF(config, rng=5).fit(rank_one_matrix).predict_matrix()
        b = BiasedMF(config, rng=5).fit(rank_one_matrix).predict_matrix()
        np.testing.assert_array_equal(a, b)

    def test_backoff_keeps_loss_finite(self, rank_one_matrix):
        config = BiasedMFConfig(
            value_min=0.0, value_max=5.0, learning_rate=500.0, max_iters=50
        )
        model = BiasedMF(config, rng=0).fit(rank_one_matrix)
        assert np.all(np.isfinite(model.loss_trace))
