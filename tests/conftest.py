"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.datasets import generate_dataset
from repro.datasets.schema import QoSMatrix


@pytest.fixture
def paper_example_matrix() -> QoSMatrix:
    """The observed QoS matrix of the paper's Fig. 4(b).

    4 users x 5 services; blank cells in the figure are unobserved.
    """
    values = np.array(
        [
            [1.4, 0.0, 1.1, 0.7, 0.0],
            [0.0, 0.3, 0.0, 0.7, 0.5],
            [0.4, 0.3, 0.0, 0.0, 0.3],
            [1.4, 0.0, 1.2, 0.0, 0.8],
        ]
    )
    mask = np.array(
        [
            [True, False, True, True, False],
            [False, True, False, True, True],
            [True, True, False, False, True],
            [True, False, True, False, True],
        ]
    )
    return QoSMatrix(values=values, mask=mask)


@pytest.fixture(scope="session")
def small_dataset():
    """A small multi-slice RT dataset shared across tests (read-only)."""
    return generate_dataset(n_users=30, n_services=60, n_slices=4, seed=123)


@pytest.fixture(scope="session")
def small_tp_dataset():
    """A small multi-slice TP dataset shared across tests (read-only)."""
    return generate_dataset(
        n_users=30, n_services=60, n_slices=4, seed=123, attribute="throughput"
    )


@pytest.fixture
def rank_one_matrix() -> QoSMatrix:
    """A noiseless rank-1 positive matrix — easy mode for factor models."""
    rng = np.random.default_rng(0)
    row = rng.uniform(0.5, 2.0, size=12)
    col = rng.uniform(0.5, 2.0, size=20)
    return QoSMatrix.dense(np.outer(row, col))
