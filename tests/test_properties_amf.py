"""Property-based and stateful tests of AMF's core invariants.

These complement the example-based tests with hypothesis-driven coverage:
whatever stream of operations reaches the model, its structural invariants
must hold — predictions stay in the value range, the sample store's
bookkeeping stays consistent, and training never produces non-finite state.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import AdaptiveMatrixFactorization, AMFConfig
from repro.core.amf import _SampleStore
from repro.datasets.schema import QoSRecord

qos_values = st.floats(min_value=0.0, max_value=20.0, allow_nan=False)
user_ids = st.integers(min_value=0, max_value=15)
service_ids = st.integers(min_value=0, max_value=25)

observations = st.lists(
    st.tuples(user_ids, service_ids, qos_values), min_size=1, max_size=120
)


class TestModelProperties:
    @given(samples=observations)
    @settings(max_examples=60, deadline=None)
    def test_predictions_always_in_value_range(self, samples):
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
        for k, (u, s, value) in enumerate(samples):
            model.observe(QoSRecord(timestamp=float(k), user_id=u, service_id=s, value=value))
        predictions = model.predict_matrix()
        assert np.all(predictions >= 0.0)
        assert np.all(predictions <= 20.0)
        assert np.all(np.isfinite(predictions))

    @given(samples=observations)
    @settings(max_examples=60, deadline=None)
    def test_factors_stay_finite(self, samples):
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=1)
        for k, (u, s, value) in enumerate(samples):
            model.observe(QoSRecord(timestamp=float(k), user_id=u, service_id=s, value=value))
        assert np.all(np.isfinite(model.user_factors()))
        assert np.all(np.isfinite(model.service_factors()))

    @given(samples=observations)
    @settings(max_examples=40, deadline=None)
    def test_error_trackers_bounded(self, samples):
        """EMA errors stay within [0, max(seen error, init)]."""
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=2)
        max_error = 1.0
        for k, (u, s, value) in enumerate(samples):
            error = model.observe(
                QoSRecord(timestamp=float(k), user_id=u, service_id=s, value=value)
            )
            max_error = max(max_error, error)
        for u in range(model.n_users):
            assert 0.0 <= model.weights.user_error(u) <= max_error + 1e-9
        for s in range(model.n_services):
            assert 0.0 <= model.weights.service_error(s) <= max_error + 1e-9

    @given(samples=observations, replays=st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_store_never_exceeds_unique_pairs(self, samples, replays):
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=3)
        for k, (u, s, value) in enumerate(samples):
            model.observe(QoSRecord(timestamp=float(k), user_id=u, service_id=s, value=value))
        unique_pairs = len({(u, s) for u, s, __ in samples})
        assert model.n_stored_samples == unique_pairs
        model.replay_many(now=float(len(samples)), count=replays)
        assert model.n_stored_samples <= unique_pairs

    @given(samples=observations)
    @settings(max_examples=30, deadline=None)
    def test_observe_stream_is_deterministic(self, samples):
        def run():
            model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=4)
            for k, (u, s, value) in enumerate(samples):
                model.observe(
                    QoSRecord(timestamp=float(k), user_id=u, service_id=s, value=value)
                )
            return model.predict_matrix()

        np.testing.assert_array_equal(run(), run())


class SampleStoreMachine(RuleBasedStateMachine):
    """Stateful check: the store matches a reference dict under any
    interleaving of put/discard/pick operations."""

    def __init__(self):
        super().__init__()
        self.store = _SampleStore()
        self.reference: dict[tuple[int, int], tuple[float, float]] = {}
        self.rng = np.random.default_rng(0)

    @rule(u=user_ids, s=service_ids, t=st.floats(0, 1e6, allow_nan=False), v=qos_values)
    def put(self, u, s, t, v):
        self.store.put(u, s, t, v)
        self.reference[(u, s)] = (t, v)

    @rule(u=user_ids, s=service_ids)
    def discard(self, u, s):
        self.store.discard(u, s)
        self.reference.pop((u, s), None)

    @rule()
    def random_pick_is_member(self):
        if self.reference:
            u, s, t, v = self.store.random_pick(self.rng)
            assert self.reference[(u, s)] == (t, v)

    @invariant()
    def sizes_match(self):
        assert len(self.store) == len(self.reference)
        assert set(self.store.keys()) == set(self.reference)

    @invariant()
    def contents_match(self):
        for key, expected in self.reference.items():
            assert self.store.get(*key) == expected


TestSampleStoreStateful = SampleStoreMachine.TestCase
