"""Tests for the extension experiments: parameter sweeps and selection
quality."""

import numpy as np
import pytest

from repro.experiments.parameter_impact import (
    DEFAULT_SWEEPS,
    run_all_parameters,
    run_parameter_impact,
)
from repro.experiments.runner import ExperimentScale
from repro.experiments.selection_quality import run_selection_quality

TINY = ExperimentScale(n_users=30, n_services=60, n_slices=1, reruns=1, seed=5)
MID = ExperimentScale(n_users=80, n_services=160, n_slices=1, reruns=1, seed=5)


class TestParameterImpact:
    def test_structure(self):
        result = run_parameter_impact(TINY, parameter="rank", values=(2, 10))
        assert result.values == (2, 10)
        assert len(result.mre) == 2
        assert all(np.isfinite(result.mre))
        assert "rank" in result.to_text()

    def test_best_value(self):
        result = run_parameter_impact(TINY, parameter="rank", values=(2, 10))
        assert result.best_value() in (2, 10)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="parameter"):
            run_parameter_impact(TINY, parameter="gamma")

    def test_default_sweeps_cover_paper_values(self):
        assert 10 in DEFAULT_SWEEPS["rank"]
        assert 0.8 in DEFAULT_SWEEPS["learning_rate"]
        assert 0.3 in DEFAULT_SWEEPS["beta"]
        assert 1e-3 in DEFAULT_SWEEPS["lambda"]

    def test_paper_rank_near_optimal(self):
        """The paper's rank (d = 10) sits within noise of the best swept
        value — the additive-dominant structure means tiny ranks are not
        catastrophically better or worse, so we check relative closeness
        rather than a strict ordering."""
        result = run_parameter_impact(
            MID, parameter="rank", values=(1, 10), density=0.3
        )
        best = min(result.mre)
        assert result.mre[result.values.index(10)] <= best * 1.15

    def test_run_all_parameters_keys(self):
        results = run_all_parameters(
            TINY.with_updates(n_users=20, n_services=40), density=0.3
        )
        assert set(results) == set(DEFAULT_SWEEPS)


class TestSelectionQuality:
    @pytest.fixture(scope="class")
    def result(self):
        return run_selection_quality(MID, density=0.2, pool_size=8, n_pools=150)

    def test_structure(self, result):
        assert set(result.metrics) == {"UPCC", "IPCC", "UIPCC", "PMF", "AMF"}
        for metrics in result.metrics.values():
            assert set(metrics) == {"top-1 hit", "top-3 hit", "regret (s)", "SLA accuracy"}
            assert 0.0 <= metrics["top-1 hit"] <= 1.0
            assert metrics["top-1 hit"] <= metrics["top-3 hit"]
            assert metrics["regret (s)"] >= 0.0

    def test_timeseries_coverage_is_zero(self, result):
        """Candidate pools are held-out pairs: per-pair forecasters have no
        history for them."""
        assert result.timeseries_coverage == 0.0

    def test_amf_beats_random_guessing(self, result):
        assert result.metrics["AMF"]["top-1 hit"] > 1.0 / result.pool_size
        assert result.metrics["AMF"]["top-3 hit"] > 3.0 / result.pool_size

    def test_to_text(self, result):
        text = result.to_text()
        assert "Candidate-selection quality" in text
        assert "coverage" in text


class TestAllSlices:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.all_slices import run_all_slices

        return run_all_slices(
            ExperimentScale(n_users=40, n_services=80, n_slices=3, reruns=1, seed=5),
            density=0.2,
        )

    def test_structure(self, result):
        assert set(result.per_slice) == {"UIPCC", "PMF", "AMF"}
        for series in result.per_slice.values():
            assert len(series) == 3
            for entry in series:
                assert set(entry) == {"MAE", "MRE", "NPRE"}

    def test_averages_consistent(self, result):
        manual = np.mean([s["MRE"] for s in result.per_slice["AMF"]])
        assert result.average("AMF", "MRE") == pytest.approx(manual)

    def test_series_accessor(self, result):
        series = result.series("UIPCC", "NPRE")
        assert len(series) == 3
        assert all(np.isfinite(series))

    def test_to_text(self, result):
        text = result.to_text()
        assert "all slices" in text and "per-slice MRE" in text
