"""Integration: the adaptation loop driven through the concurrent stack.

Combines the pieces a deployment would actually wire together: a
lock-protected model with a background replay daemon underneath a
prediction service, consumed by execution engines driven by a Poisson
workload — the closest in-process approximation of the paper's Fig. 3
running system.
"""

import time

import numpy as np
import pytest

from repro.adaptation import (
    SLA,
    AbstractTask,
    ExecutionEngine,
    QoSPredictionService,
    ServiceRegistry,
    TensorQoSOracle,
    ThresholdPolicy,
    Workflow,
)
from repro.core import AMFConfig, AdaptiveMatrixFactorization, BackgroundTrainer, ConcurrentModel
from repro.datasets import generate_dataset
from repro.datasets.schema import QoSRecord
from repro.simulation.workload import merge_workloads, poisson_arrivals, drive_engines


class TestWorkloadDrivenAdaptation:
    def test_poisson_driven_multi_user_run(self):
        data = generate_dataset(n_users=6, n_services=15, n_slices=4, seed=13)
        oracle = TensorQoSOracle(data, noise_sigma=0.05, rng=13)
        registry = ServiceRegistry()
        for sid in range(15):
            registry.register(sid, "t")
        predictor = QoSPredictionService(AMFConfig.for_response_time(), rng=13)
        sla = SLA(attribute="rt", threshold=2.5)

        engines = {}
        for user_id in range(3):
            workflow = Workflow(name=f"w{user_id}", tasks=[AbstractTask("A", "t")])
            workflow.bind("A", user_id)
            engines[user_id] = ExecutionEngine(
                user_id=user_id,
                workflow=workflow,
                registry=registry,
                predictor=predictor,
                policy=ThresholdPolicy(sla),
                oracle=oracle,
                sla=sla,
            )

        workload = merge_workloads(
            *[
                poisson_arrivals(
                    rate_per_second=0.02,
                    duration=3000.0,
                    user_id=user_id,
                    rng=13 + user_id,
                )
                for user_id in range(3)
            ]
        )
        executed = drive_engines(engines, workload)
        assert executed == len(workload)
        total = sum(engine.stats.executions for engine in engines.values())
        assert total == executed
        assert predictor.observations_handled == executed  # one task each

    def test_daemon_backed_predictor_in_engine(self):
        """An engine whose predictor is served by the concurrent stack."""
        data = generate_dataset(n_users=5, n_services=10, n_slices=2, seed=14)
        shared = ConcurrentModel(
            AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=14)
        )

        class DaemonBackedService:
            """QoSPredictionService-compatible facade over ConcurrentModel."""

            def __init__(self, model):
                self.model = model
                self.observations_handled = 0

            def report_observation(self, user_id, service_id, value, timestamp):
                self.model.observe(
                    QoSRecord(
                        timestamp=timestamp,
                        user_id=user_id,
                        service_id=service_id,
                        value=value,
                    )
                )
                self.observations_handled += 1

            def predict(self, user_id, service_id):
                return self.model.predict(user_id, service_id)

            def predict_candidates(self, user_id, service_ids):
                return {s: self.predict(user_id, s) for s in service_ids}

            def best_candidate(self, user_id, service_ids, lower_is_better=True):
                predictions = self.predict_candidates(user_id, service_ids)
                key = min if lower_is_better else max
                best = key(predictions, key=predictions.get)
                return best, predictions[best]

        predictor = DaemonBackedService(shared)
        registry = ServiceRegistry()
        for sid in range(10):
            registry.register(sid, "t")
        workflow = Workflow(name="w", tasks=[AbstractTask("A", "t")])
        workflow.bind("A", 0)
        sla = SLA(attribute="rt", threshold=2.0)
        engine = ExecutionEngine(
            user_id=0,
            workflow=workflow,
            registry=registry,
            predictor=predictor,
            policy=ThresholdPolicy(sla),
            oracle=TensorQoSOracle(data, noise_sigma=0.0, rng=14),
            sla=sla,
        )
        with BackgroundTrainer(shared):
            stats = engine.run(start=0.0, interval=20.0, count=40)
            time.sleep(0.2)  # let the daemon replay under live traffic
        assert stats.executions == 40
        assert shared.updates_applied > 40  # daemon replays on top of arrivals
        assert np.all(np.isfinite(shared.predict_matrix()))
