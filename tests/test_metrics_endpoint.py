"""Tests for the server's /metrics endpoint and read-path purity.

Two concerns share a file because they share a fixture (a durable server):

* the Prometheus scrape must be strictly parseable and cover the core
  metric families (trainer, WAL/checkpoint, fallback sources, drift);
* serving predictions — including for entities the model has never seen —
  must leave the model, the credence weights, and the on-disk checkpoint
  untouched (the read-path-mutation regression).
"""

import math
import os

import numpy as np
import pytest

from repro.core import AMFConfig
from repro.observability import get_registry, parse_prometheus_text
from repro.server import PredictionClient, PredictionServer
from repro.simulation import CORE_METRIC_FAMILIES, check_metrics_exposition


@pytest.fixture(autouse=True)
def _reset_metrics():
    get_registry().reset()
    yield
    get_registry().reset()


@pytest.fixture()
def durable_server(tmp_path):
    instance = PredictionServer(
        AMFConfig.for_response_time(),
        rng=0,
        background_replay=False,
        data_dir=str(tmp_path / "data"),
        checkpoint_interval=10_000,  # only explicit checkpoints
    )
    with instance:
        yield instance


@pytest.fixture()
def client(durable_server):
    return PredictionClient(durable_server.address)


def _feed(client, n=60, n_users=4, n_services=6):
    rng = np.random.default_rng(0)
    for k in range(n):
        client.report_observation(
            int(rng.integers(n_users)),
            int(rng.integers(n_services)),
            value=float(rng.uniform(0.2, 3.0)),
            timestamp=float(k),
        )


class TestMetricsEndpoint:
    def test_scrape_parses_and_covers_core_families(self, durable_server, client):
        _feed(client)
        client.predict(0, 0)
        durable_server.checkpoint()
        text = client.metrics()
        ok, detail = check_metrics_exposition(text)
        assert ok, detail
        families = parse_prometheus_text(text)
        for name in CORE_METRIC_FAMILIES:
            assert name in families

    def test_content_type_is_prometheus_text(self, durable_server, client):
        import urllib.request

        host, port = durable_server.address
        with urllib.request.urlopen(f"http://{host}:{port}/metrics") as response:
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )

    def test_counters_reflect_traffic(self, durable_server, client):
        _feed(client, n=25)
        for __ in range(3):
            client.predict(0, 0)
        durable_server.checkpoint()
        families = parse_prometheus_text(client.metrics())
        samples = families["qos_wal_appends_total"]["samples"]
        assert samples[("qos_wal_appends_total", ())] == 25
        saves = families["qos_checkpoint_saves_total"]["samples"]
        assert saves[("qos_checkpoint_saves_total", ())] >= 1
        served = families["qos_predictions_total"]["samples"]
        assert sum(served.values()) == 3

    def test_prediction_sources_are_labeled(self, durable_server, client):
        _feed(client, n=80, n_users=3, n_services=3)
        client.predict(0, 0)  # known pair -> model
        client.predict(500, 500)  # unknown pair -> fallback chain
        families = parse_prometheus_text(client.metrics())
        sources = {
            dict(labels)["source"]
            for (__, labels) in families["qos_predictions_total"]["samples"]
        }
        assert "model" in sources
        assert len(sources) >= 2  # at least one degraded source too

    def test_drift_gauges_update_with_traffic(self, durable_server, client):
        _feed(client, n=120, n_users=3, n_services=3)
        families = parse_prometheus_text(client.metrics())
        mae = families["qos_stream_mae"]["samples"][("qos_stream_mae", ())]
        window = families["qos_stream_window_size"]["samples"][
            ("qos_stream_window_size", ())
        ]
        assert window > 0
        assert math.isfinite(mae) and mae >= 0.0


def _model_snapshot(server):
    model = server.model
    return {
        "updates_applied": model.updates_applied,
        "stored_samples": model.n_stored_samples,
        "n_users": model.n_users,
        "n_services": model.n_services,
        "user_factors": model.user_factors().copy(),
        "service_factors": model.service_factors().copy(),
        "user_errors": model.with_model(
            lambda m: m.weights._user_errors.snapshot()
        ),
        "service_errors": model.with_model(
            lambda m: m.weights._service_errors.snapshot()
        ),
    }


class TestReadPathPurity:
    """Regression: predictions must not mutate any state, anywhere.

    Before the fix, asking about a never-observed entity grew the credence
    error trackers, so the *checkpoint* of a server that had merely
    answered queries differed from one that had not."""

    def test_predictions_for_unknown_entities_leave_state_identical(
        self, durable_server, client, tmp_path
    ):
        _feed(client, n=50)
        durable_server.checkpoint()
        checkpoint_path = durable_server._checkpoints.path
        size_before = os.path.getsize(checkpoint_path)
        before = _model_snapshot(durable_server)

        # Hammer the read path with entities the model has never seen.
        for k in range(5):
            client.predict(10_000 + k, 20_000 + k)
            client.predict_detailed(30_000 + k, 40_000 + k)
        client.predict_candidates(77_777, [1, 2, 50_000, 60_000])
        # Direct expected-error reads (the calibration path) too.
        durable_server.model.expected_error(88_888, 99_999)

        after = _model_snapshot(durable_server)
        for key in ("updates_applied", "stored_samples", "n_users", "n_services"):
            assert after[key] == before[key], key
        for key in (
            "user_factors",
            "service_factors",
            "user_errors",
            "service_errors",
        ):
            np.testing.assert_array_equal(after[key], before[key], err_msg=key)

        # Checkpoint again: identical state serializes to the same size
        # (np.savez timestamps make raw byte equality unreliable, so size +
        # array equality is the checkable contract).
        durable_server.checkpoint()
        assert os.path.getsize(checkpoint_path) == size_before
