"""Tests for the experiment runner helpers not covered elsewhere."""

import numpy as np
import pytest

from repro.datasets import generate_dataset, train_test_split_matrix
from repro.experiments.runner import (
    ExperimentScale,
    evaluate_amf,
    evaluate_batch_predictor,
    make_amf_config,
    make_baselines,
    make_pmf_config,
)
from repro.experiments.runner import test_entries as extract_test_entries


@pytest.fixture(scope="module")
def split():
    matrix = generate_dataset(n_users=25, n_services=50, n_slices=1, seed=6).slice(0)
    return train_test_split_matrix(matrix, 0.3, rng=6)


class TestEvaluateAMF:
    def test_result_fields(self, split):
        train, test = split
        result = evaluate_amf(train, test, make_amf_config("rt"), rng=6)
        assert result.approach == "AMF"
        assert set(result.metrics) == {"MAE", "MRE", "NPRE"}
        assert result.fit_seconds > 0
        assert result["MRE"] == result.metrics["MRE"]

    def test_return_model_flag(self, split):
        train, test = split
        result, model = evaluate_amf(
            train, test, make_amf_config("rt"), rng=6, return_model=True
        )
        assert model.n_users == train.n_users
        assert np.isfinite(result.metrics["MRE"])

    def test_deterministic_given_seed(self, split):
        train, test = split
        a = evaluate_amf(train, test, make_amf_config("rt"), rng=11)
        b = evaluate_amf(train, test, make_amf_config("rt"), rng=11)
        assert a.metrics == b.metrics


class TestEvaluateBatch:
    def test_wraps_predictor(self, split):
        train, test = split
        predictor = make_baselines("rt", rng=6)["UIPCC"]
        result = evaluate_batch_predictor("UIPCC", predictor, train, test)
        assert result.approach == "UIPCC"
        assert result.fit_seconds > 0

    def test_test_entries_alignment(self, split):
        __, test = split
        rows, cols, actual = extract_test_entries(test)
        assert rows.shape == cols.shape == actual.shape
        np.testing.assert_array_equal(actual, test.values[rows, cols])


class TestMakeBaselines:
    def test_default_lineup(self):
        assert set(make_baselines("rt", rng=0)) == {"UPCC", "IPCC", "UIPCC", "PMF"}

    def test_extensions_flag_adds_biased_mf(self):
        lineup = make_baselines("rt", rng=0, include_extensions=True)
        assert "BiasedMF" in lineup

    def test_tp_biased_mf_range(self):
        lineup = make_baselines("tp", rng=0, include_extensions=True)
        assert lineup["BiasedMF"].config.value_max == 7000.0

    def test_pmf_config_per_attribute(self):
        assert make_pmf_config("rt").regularization == pytest.approx(0.01)
        assert make_pmf_config("tp").regularization == pytest.approx(1e-5)
        assert make_pmf_config("rt", regularization=0.5).regularization == 0.5


class TestScalePresets:
    def test_tiny_smaller_than_quick(self):
        tiny, quick = ExperimentScale.tiny(), ExperimentScale.quick()
        assert tiny.n_users < quick.n_users
        assert tiny.n_services < quick.n_services

    def test_with_updates_preserves_rest(self):
        scale = ExperimentScale.quick().with_updates(seed=7)
        assert scale.seed == 7
        assert scale.n_users == ExperimentScale.quick().n_users

    def test_dataset_attribute_routing(self):
        scale = ExperimentScale.tiny()
        assert scale.dataset("rt").attribute == "response_time"
        assert scale.dataset("tp").attribute == "throughput"
