"""Tests for workflow-level QoS aggregation (reference [11] rules)."""

import pytest

from repro.adaptation.aggregation import (
    Branch,
    Loop,
    Parallel,
    Sequence_,
    Task,
    aggregate,
    predicted_workflow_qos,
)

VALUES = {"A": 1.0, "B": 2.0, "C": 0.5, "D": 0.25}


class TestTask:
    def test_leaf_lookup(self):
        assert Task("A").response_time(VALUES) == 1.0
        assert Task("A").throughput(VALUES) == 1.0

    def test_missing_value(self):
        with pytest.raises(KeyError, match="Z"):
            Task("Z").response_time(VALUES)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Task("")


class TestSequence:
    def test_response_time_sums(self):
        node = Sequence_([Task("A"), Task("B"), Task("C")])
        assert node.response_time(VALUES) == pytest.approx(3.5)

    def test_throughput_is_bottleneck(self):
        node = Sequence_([Task("A"), Task("B"), Task("C")])
        assert node.throughput(VALUES) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequence_([])


class TestParallel:
    def test_response_time_is_max(self):
        node = Parallel([Task("A"), Task("B")])
        assert node.response_time(VALUES) == 2.0

    def test_throughput_sums(self):
        node = Parallel([Task("A"), Task("B")])
        assert node.throughput(VALUES) == 3.0


class TestBranch:
    def test_weighted_response_time(self):
        node = Branch([Task("A"), Task("B")], [0.25, 0.75])
        assert node.response_time(VALUES) == pytest.approx(0.25 * 1.0 + 0.75 * 2.0)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            Branch([Task("A"), Task("B")], [0.5, 0.4])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Branch([Task("A")], [0.5, 0.5])

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Branch([Task("A"), Task("B")], [1.5, -0.5])


class TestLoop:
    def test_response_time_multiplies(self):
        node = Loop(Task("A"), iterations=4)
        assert node.response_time(VALUES) == 4.0

    def test_throughput_unchanged(self):
        node = Loop(Task("A"), iterations=4)
        assert node.throughput(VALUES) == 1.0

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            Loop(Task("A"), iterations=0)


class TestComposition:
    def _tree(self):
        # A ; (B || C) ; loop(D, 3)
        return Sequence_([Task("A"), Parallel([Task("B"), Task("C")]), Loop(Task("D"), 3)])

    def test_nested_response_time(self):
        assert self._tree().response_time(VALUES) == pytest.approx(1.0 + 2.0 + 0.75)

    def test_nested_throughput(self):
        # min(A, B + C, D) = min(1.0, 2.5, 0.25)
        assert self._tree().throughput(VALUES) == 0.25

    def test_task_names_collected(self):
        assert self._tree().task_names() == {"A", "B", "C", "D"}

    def test_duplicate_tasks_rejected(self):
        node = Sequence_([Task("A"), Task("A")])
        with pytest.raises(ValueError, match="duplicate"):
            node.task_names()

    def test_aggregate_dispatch(self):
        tree = self._tree()
        assert aggregate(tree, VALUES) == tree.response_time(VALUES)
        assert aggregate(tree, VALUES, "throughput") == tree.throughput(VALUES)
        with pytest.raises(ValueError, match="attribute"):
            aggregate(tree, VALUES, "jitter")

    def test_aggregate_missing_tasks_named(self):
        with pytest.raises(KeyError, match="D"):
            aggregate(self._tree(), {"A": 1.0, "B": 1.0, "C": 1.0})


class TestPredictedWorkflowQoS:
    class _StubPredictor:
        def predict(self, user_id, service_id):
            return float(service_id) / 10.0

    def test_predicts_through_bindings(self):
        tree = Sequence_([Task("A"), Task("B")])
        bindings = {"A": 10, "B": 30}
        value = predicted_workflow_qos(tree, bindings, self._StubPredictor(), user_id=0)
        assert value == pytest.approx(1.0 + 3.0)

    def test_missing_binding_rejected(self):
        tree = Sequence_([Task("A"), Task("B")])
        with pytest.raises(KeyError, match="B"):
            predicted_workflow_qos(tree, {"A": 1}, self._StubPredictor(), user_id=0)
