"""The persistent-connection binary serving path and client transport modes.

The binary transport is an accelerator, not a second API: every request
lands on the same backend handlers as the JSON endpoints, so fencing,
admission control, idempotent dedup, and degraded-mode fallbacks behave
identically.  These tests pin the wire format (so the protocol can't drift
silently), the server loop's error boundaries, and the client's
auto/binary/json transport semantics.
"""

import math
import socket
import struct

import numpy as np
import pytest

from repro.server.app import PredictionServer
from repro.server.binary import (
    MAX_FRAME_BYTES,
    OP_ERROR,
    OP_PING,
    OP_PREDICT_BATCH,
    RESPONSE_FLAG,
    BinaryConnection,
    BinaryServerError,
    ProtocolError,
    pack_error,
    pack_frame,
    pack_observe_request,
    pack_predict_request,
    pack_predict_response,
    read_frame,
    unpack_error,
    unpack_observe_request,
    unpack_predict_request,
    unpack_predict_response,
)
from repro.server.client import (
    PredictionClient,
    RetryableServiceError,
    TerminalServiceError,
)


def _warm(client, n=80, users=4, services=6):
    for k in range(n):
        client.report_observation(
            k % users, k % services, value=0.5 + (k % 9) * 0.4, timestamp=float(k)
        )


class TestWireFormat:
    def test_predict_request_roundtrip(self):
        frame = pack_predict_request(42, [3, 1, 4, 1_000_000_000_000])
        opcode, body = self._unframe(frame)
        assert opcode == OP_PREDICT_BATCH
        user_id, ids = unpack_predict_request(body)
        assert user_id == 42
        assert ids == [3, 1, 4, 1_000_000_000_000]

    def test_predict_response_roundtrip_with_nan(self):
        frame = pack_predict_response([1.5, float("nan"), 0.25], [0, 255, 3])
        __, body = self._unframe(frame)
        values, codes = unpack_predict_response(body)
        assert values[0] == 1.5
        assert math.isnan(values[1])
        assert values[2] == 0.25
        assert codes == [0, 255, 3]

    def test_observe_request_roundtrip(self):
        frame = pack_observe_request(12.5, 7, 9, 3.25, "k:1")
        __, body = self._unframe(frame)
        assert unpack_observe_request(body) == (12.5, 7, 9, 3.25, "k:1")
        frame = pack_observe_request(0.0, 0, 0, 0.5)
        __, body = self._unframe(frame)
        assert unpack_observe_request(body)[4] is None

    def test_error_roundtrip(self):
        frame = pack_error(409, {"error": "fenced", "code": "fenced_write"})
        opcode, body = self._unframe(frame)
        assert opcode == OP_ERROR
        status, payload = unpack_error(body)
        assert status == 409
        assert payload["code"] == "fenced_write"

    def test_bad_magic_rejected(self):
        frame = bytearray(pack_frame(OP_PING))
        frame[0:2] = b"XX"
        with pytest.raises(ProtocolError, match="magic"):
            self._unframe(bytes(frame))

    def test_oversized_length_prefix_rejected(self):
        header = struct.pack("!2sBBI", b"QP", 1, OP_PING, MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="frame"):
            self._unframe(header)

    def test_truncated_bodies_rejected(self):
        with pytest.raises(ProtocolError, match="truncated"):
            unpack_predict_request(b"\x00")
        with pytest.raises(ProtocolError, match="truncated"):
            unpack_observe_request(b"\x00")

    def test_declared_count_must_match_body(self):
        user_header = struct.pack("!qI", 1, 5)  # claims 5 ids, carries 1
        with pytest.raises(ProtocolError):
            unpack_predict_request(user_header + struct.pack("!q", 9))

    @staticmethod
    def _unframe(frame: bytes) -> tuple[int, bytes]:
        """Feed raw bytes through the real socket reader."""
        left, right = socket.socketpair()
        try:
            left.sendall(frame)
            left.shutdown(socket.SHUT_WR)
            result = read_frame(right)
            if result is None:
                raise ProtocolError("clean EOF")
            return result
        finally:
            left.close()
            right.close()


class TestBinaryServer:
    def test_ping_and_persistent_reuse(self):
        with PredictionServer(rng=0, background_replay=False) as server:
            assert server.binary_address is not None
            with BinaryConnection(server.binary_address) as conn:
                sock_before = conn._sock
                assert conn.ping()
                for __ in range(5):
                    assert conn.ping()
                # One TCP connection served every request.
                assert conn._sock is sock_before

    def test_binary_matches_json_predictions(self):
        with PredictionServer(rng=0, background_replay=False) as server:
            client = PredictionClient(server.address, transport="json")
            _warm(client)
            ids = list(range(6)) + [999]
            json_result = client.predict_candidates_detailed(0, ids)
            assert json_result["transport"] == "json"
            with BinaryConnection(server.binary_address) as conn:
                values, sources = conn.predict_batch(0, ids)
            for sid, value in zip(ids, values):
                assert value == pytest.approx(
                    json_result["predictions"][sid], rel=1e-12
                )
            assert sources == [
                json_result["sources"][sid] for sid in ids
            ]
            client.close()

    def test_observe_applies_and_dedups(self):
        with PredictionServer(rng=0, background_replay=False) as server:
            with BinaryConnection(server.binary_address) as conn:
                first = conn.observe(1.0, 0, 0, 2.5, key="obs:1")
                assert first["action"] == "admit"
                assert np.isfinite(first["sample_error"])
                replay = conn.observe(1.0, 0, 0, 2.5, key="obs:1")
                assert replay["action"] == "deduplicated"
                assert replay["sample_error"] is None or math.isnan(
                    replay["sample_error"]
                )
            assert server.model.updates_applied == 1

    def test_empty_and_negative_ids_are_400(self):
        with PredictionServer(rng=0, background_replay=False) as server:
            with BinaryConnection(server.binary_address) as conn:
                with pytest.raises(BinaryServerError) as exc_info:
                    conn.predict_batch(0, [])
                assert exc_info.value.status == 400
                with pytest.raises(BinaryServerError) as exc_info:
                    conn.predict_batch(0, [-3])
                assert exc_info.value.status == 400
                # The connection survives server-side rejections.
                assert conn.ping()

    def test_unknown_opcode_gets_error_frame_and_close(self):
        with PredictionServer(rng=0, background_replay=False) as server:
            sock = socket.create_connection(server.binary_address, timeout=5.0)
            try:
                sock.sendall(pack_frame(0x42))
                opcode, body = read_frame(sock)
                assert opcode == OP_ERROR
                status, __ = unpack_error(body)
                assert status == 400
                # Protocol violations drop the connection.
                assert read_frame(sock) is None
            finally:
                sock.close()

    def test_oversized_frame_gets_413_and_connection_survives(self):
        # An oversized length prefix with a valid header is a refusable
        # request, not stream corruption: the server must drain the body,
        # answer with a framed 413 (the HTTP request-too-large
        # equivalent), and keep serving on the same connection.
        with PredictionServer(rng=0, background_replay=False) as server:
            sock = socket.create_connection(server.binary_address, timeout=10.0)
            try:
                oversized = MAX_FRAME_BYTES + 1
                sock.sendall(
                    struct.pack("!2sBBI", b"QP", 1, OP_PREDICT_BATCH, oversized)
                )
                sent = 0
                chunk = b"\x00" * (1 << 20)
                while sent < oversized:
                    step = min(len(chunk), oversized - sent)
                    sock.sendall(chunk[:step])
                    sent += step
                opcode, body = read_frame(sock)
                assert opcode == OP_ERROR
                status, payload = unpack_error(body)
                assert status == 413
                assert payload["max_frame_bytes"] == MAX_FRAME_BYTES
                # Unlike corrupt framing, the connection stays usable.
                sock.sendall(pack_frame(OP_PING))
                opcode, __ = read_frame(sock)
                assert opcode == OP_PING | RESPONSE_FLAG
            finally:
                sock.close()

    def test_disabled_binary_port(self):
        with PredictionServer(
            rng=0, background_replay=False, binary_port=None
        ) as server:
            assert server.binary_address is None
            client = PredictionClient(server.address)
            assert client.status()["transport"]["binary_address"] is None
            client.close()


class TestClientTransports:
    def test_auto_uses_binary(self):
        with PredictionServer(rng=0, background_replay=False) as server:
            client = PredictionClient(server.address)
            _warm(client)
            result = client.predict_candidates_detailed(0, [0, 1, 2])
            assert result["transport"] == "binary"
            client.close()

    def test_auto_falls_back_when_binary_disabled(self):
        with PredictionServer(
            rng=0, background_replay=False, binary_port=None
        ) as server:
            client = PredictionClient(server.address)
            _warm(client, n=20)
            result = client.predict_candidates_detailed(0, [0, 1])
            assert result["transport"] == "json"
            client.close()

    def test_strict_binary_raises_when_disabled(self):
        with PredictionServer(
            rng=0, background_replay=False, binary_port=None
        ) as server:
            client = PredictionClient(server.address, transport="binary")
            with pytest.raises((RetryableServiceError, ConnectionError)):
                client.predict_candidates(0, [0])
            client.close()

    def test_json_transport_never_uses_binary(self):
        with PredictionServer(rng=0, background_replay=False) as server:
            client = PredictionClient(server.address, transport="json")
            _warm(client, n=20)
            result = client.predict_candidates_detailed(0, [0, 1])
            assert result["transport"] == "json"
            assert client._binary_conn is None
            client.close()

    def test_invalid_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            PredictionClient(("127.0.0.1", 1), transport="carrier-pigeon")

    def test_duplicate_ids_deduplicated(self):
        with PredictionServer(rng=0, background_replay=False) as server:
            client = PredictionClient(server.address)
            _warm(client, n=40)
            result = client.predict_candidates_detailed(0, [2, 2, 1, 2, 1])
            assert sorted(result["predictions"]) == [1, 2]
            client.close()

    def test_server_errors_do_not_trigger_fallback(self):
        """A server *answer* (empty batch -> 400) must surface as the
        mapped error on every transport, never silently retry over JSON."""
        with PredictionServer(rng=0, background_replay=False) as server:
            for transport in ("auto", "binary", "json"):
                client = PredictionClient(server.address, transport=transport)
                with pytest.raises(TerminalServiceError, match="400"):
                    client.predict_candidates(0, [])
                client.close()

    def test_auto_falls_back_mid_session_when_binary_dies(self):
        with PredictionServer(rng=0, background_replay=False) as server:
            client = PredictionClient(server.address, breaker_cooldown=30.0)
            _warm(client, n=20)
            assert client.predict_candidates_detailed(0, [0])["transport"] == (
                "binary"
            )
            server._binary.stop()
            result = client.predict_candidates_detailed(0, [0])
            assert result["transport"] == "json"
            # Breaker holds: no binary re-probe storm while it is down.
            assert client.predict_candidates_detailed(0, [0])["transport"] == (
                "json"
            )
            client.close()


class TestTransportMetrics:
    def test_request_counters_and_mode_gauge(self):
        from repro.observability import get_registry, parse_prometheus_text

        with PredictionServer(rng=0, background_replay=False) as server:
            client = PredictionClient(server.address)
            _warm(client, n=10)
            client.predict_candidates(0, [0, 1])
            families = parse_prometheus_text(get_registry().render())
            requests = families["qos_transport_requests_total"]["samples"]
            by_label = {labels: value for (__, labels), value in requests.items()}
            assert by_label[(("transport", "json"),)] > 0
            assert by_label[(("transport", "binary"),)] > 0
            mode = families["qos_transport_mode"]["samples"]
            mode_by_label = {labels: value for (__, labels), value in mode.items()}
            assert mode_by_label[(("transport", "json"),)] == 1.0
            assert mode_by_label[(("transport", "binary"),)] == 1.0
            client.close()
