"""Tests for QoSStream and the matrix-to-stream converters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.schema import QoSMatrix, QoSRecord
from repro.datasets.stream import QoSStream, stream_from_matrix, stream_from_slices
from repro.datasets.synthetic import generate_dataset


def records_with_times(times):
    return [
        QoSRecord(timestamp=float(t), user_id=0, service_id=k, value=1.0)
        for k, t in enumerate(times)
    ]


class TestQoSStream:
    def test_sorted_on_construction(self):
        stream = QoSStream(records_with_times([5.0, 1.0, 3.0]))
        assert [r.timestamp for r in stream] == [1.0, 3.0, 5.0]

    def test_presorted_skips_sorting(self):
        # Caller vouches for order; the stream preserves it verbatim.
        stream = QoSStream(records_with_times([5.0, 1.0]), presorted=True)
        assert [r.timestamp for r in stream] == [5.0, 1.0]

    def test_len_and_indexing(self):
        stream = QoSStream(records_with_times([1, 2, 3]))
        assert len(stream) == 3
        assert stream[0].timestamp == 1.0

    def test_duration(self):
        assert QoSStream(records_with_times([2.0, 8.0])).duration() == 6.0
        assert QoSStream([]).duration() == 0.0
        assert QoSStream(records_with_times([4.0])).duration() == 0.0

    def test_users_and_services(self):
        records = [
            QoSRecord(timestamp=0, user_id=1, service_id=5, value=1.0),
            QoSRecord(timestamp=1, user_id=2, service_id=5, value=1.0),
        ]
        stream = QoSStream(records)
        assert stream.users() == {1, 2}
        assert stream.services() == {5}

    def test_filter(self):
        stream = QoSStream(records_with_times([1, 2, 3, 4]))
        filtered = stream.filter(lambda r: r.timestamp > 2)
        assert len(filtered) == 2

    def test_merge_keeps_order(self):
        a = QoSStream(records_with_times([1.0, 5.0]))
        b = QoSStream(records_with_times([2.0, 4.0]))
        merged = a.merge(b)
        assert [r.timestamp for r in merged] == [1.0, 2.0, 4.0, 5.0]

    def test_by_slice_grouping(self):
        records = [
            QoSRecord(timestamp=float(k), user_id=0, service_id=k, value=1.0, slice_id=k % 2)
            for k in range(6)
        ]
        groups = QoSStream(records).by_slice()
        assert set(groups) == {0, 1}
        assert len(groups[0]) == 3

    @given(times=st.lists(st.floats(min_value=0, max_value=1e6), min_size=0, max_size=30))
    @settings(max_examples=50)
    def test_always_time_ordered(self, times):
        stream = QoSStream(records_with_times(times))
        stamps = [r.timestamp for r in stream]
        assert stamps == sorted(stamps)


class TestStreamFromMatrix:
    def _matrix(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0.1, 3.0, size=(6, 9))
        mask = rng.random((6, 9)) > 0.4
        return QoSMatrix(values=values, mask=mask)

    def test_one_record_per_observed_entry(self):
        matrix = self._matrix()
        stream = stream_from_matrix(matrix, rng=0)
        assert len(stream) == int(matrix.mask.sum())

    def test_values_match_matrix(self):
        matrix = self._matrix()
        for record in stream_from_matrix(matrix, rng=0):
            assert record.value == matrix.values[record.user_id, record.service_id]
            assert matrix.mask[record.user_id, record.service_id]

    def test_timestamps_within_slice_window(self):
        matrix = self._matrix()
        stream = stream_from_matrix(matrix, slice_start=900.0, slice_seconds=900.0, rng=0)
        for record in stream:
            assert 900.0 <= record.timestamp < 1800.0

    def test_slice_id_attached(self):
        stream = stream_from_matrix(self._matrix(), slice_id=7, rng=0)
        assert all(r.slice_id == 7 for r in stream)

    def test_randomized_order_differs_from_row_major(self):
        matrix = self._matrix()
        stream = stream_from_matrix(matrix, rng=0)
        row_major = [(r.user_id, r.service_id) for r in matrix.records()]
        streamed = [(r.user_id, r.service_id) for r in stream]
        assert set(streamed) == set(row_major)
        assert streamed != row_major  # shuffled with overwhelming probability


class TestStreamFromSlices:
    def test_concatenates_all_slices(self):
        data = generate_dataset(n_users=8, n_services=10, n_slices=3, seed=0)
        stream = stream_from_slices(data, rng=0)
        assert len(stream) == int(data.mask.sum())
        assert {r.slice_id for r in stream} == {0, 1, 2}

    def test_time_ordered_across_slices(self):
        data = generate_dataset(n_users=8, n_services=10, n_slices=3, seed=0)
        stamps = [r.timestamp for r in stream_from_slices(data, rng=0)]
        assert stamps == sorted(stamps)

    def test_slice_masks_restrict(self):
        data = generate_dataset(n_users=8, n_services=10, n_slices=2, seed=0)
        masks = [np.zeros((8, 10), dtype=bool) for __ in range(2)]
        masks[0][0, 0] = True
        masks[1][1, 1] = True
        stream = stream_from_slices(data, slice_masks=masks, rng=0)
        assert len(stream) <= 2  # only entries also observed in the data

    def test_wrong_mask_count_rejected(self):
        data = generate_dataset(n_users=8, n_services=10, n_slices=2, seed=0)
        with pytest.raises(ValueError, match="slice masks"):
            stream_from_slices(data, slice_masks=[np.ones((8, 10), dtype=bool)])
