"""Tests for the trivial mean predictors (sanity floors)."""

import numpy as np
import pytest

from repro.baselines import GlobalMean, ItemMean, UserMean
from repro.datasets.schema import QoSMatrix


@pytest.fixture
def sparse_matrix():
    values = np.array(
        [
            [1.0, 2.0, 3.0],
            [4.0, 0.0, 6.0],
            [0.0, 0.0, 0.0],  # user 2 has no observations
        ]
    )
    mask = np.array(
        [
            [True, True, True],
            [True, False, True],
            [False, False, False],
        ]
    )
    return QoSMatrix(values=values, mask=mask)


class TestGlobalMean:
    def test_predicts_observed_mean(self, sparse_matrix):
        model = GlobalMean().fit(sparse_matrix)
        expected = np.mean([1, 2, 3, 4, 6])
        assert np.all(model.predict_matrix() == pytest.approx(expected))

    def test_shape(self, sparse_matrix):
        assert GlobalMean().fit(sparse_matrix).predict_matrix().shape == (3, 3)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            GlobalMean().predict_matrix()

    def test_empty_matrix_rejected(self):
        empty = QoSMatrix(values=np.zeros((2, 2)), mask=np.zeros((2, 2), dtype=bool))
        with pytest.raises(ValueError, match="empty"):
            GlobalMean().fit(empty)


class TestUserMean:
    def test_row_means(self, sparse_matrix):
        predictions = UserMean().fit(sparse_matrix).predict_matrix()
        assert predictions[0, 0] == pytest.approx(2.0)  # mean(1, 2, 3)
        assert predictions[1, 1] == pytest.approx(5.0)  # mean(4, 6)

    def test_empty_row_falls_back_to_global(self, sparse_matrix):
        predictions = UserMean().fit(sparse_matrix).predict_matrix()
        assert predictions[2, 0] == pytest.approx(np.mean([1, 2, 3, 4, 6]))

    def test_constant_within_row(self, sparse_matrix):
        predictions = UserMean().fit(sparse_matrix).predict_matrix()
        assert np.all(predictions[0] == predictions[0, 0])


class TestItemMean:
    def test_column_means(self, sparse_matrix):
        predictions = ItemMean().fit(sparse_matrix).predict_matrix()
        assert predictions[0, 0] == pytest.approx(2.5)  # mean(1, 4)
        assert predictions[0, 1] == pytest.approx(2.0)  # only user 0 observed

    def test_constant_within_column(self, sparse_matrix):
        predictions = ItemMean().fit(sparse_matrix).predict_matrix()
        assert np.all(predictions[:, 0] == predictions[0, 0])

    def test_predict_entries_consistency(self, sparse_matrix):
        model = ItemMean().fit(sparse_matrix)
        rows = np.array([0, 1])
        cols = np.array([2, 2])
        np.testing.assert_array_equal(
            model.predict_entries(rows, cols), model.predict_matrix()[rows, cols]
        )
