"""Tests for the thread-safe model facade and the background trainer."""

import threading
import time

import numpy as np
import pytest

from repro.core import AdaptiveMatrixFactorization, AMFConfig
from repro.core.daemon import BackgroundTrainer, ConcurrentModel
from repro.datasets.schema import QoSRecord


def record(u, s, value, t=0.0):
    return QoSRecord(timestamp=t, user_id=u, service_id=s, value=value)


def make_model(seed=0):
    return ConcurrentModel(
        AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=seed)
    )


class TestConcurrentModel:
    def test_delegates_operations(self):
        model = make_model()
        error = model.observe(record(0, 0, 1.0))
        assert error > 0
        assert model.n_stored_samples == 1
        assert model.updates_applied == 1
        assert 0 <= model.predict(0, 0) <= 20.0

    def test_predict_registers_entities(self):
        model = make_model()
        value = model.predict(5, 9)  # never observed
        assert np.isfinite(value)

    def test_concurrent_observers_consistent(self):
        """N threads each observe disjoint pairs; totals must be exact."""
        model = make_model()
        per_thread = 200
        n_threads = 4

        def work(thread_id):
            for k in range(per_thread):
                model.observe(record(thread_id, k % 50, 1.0 + thread_id, t=float(k)))

        threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert model.updates_applied == per_thread * n_threads
        assert model.n_stored_samples == n_threads * 50

    def test_concurrent_reads_and_writes_stay_finite(self):
        model = make_model()
        stop = threading.Event()
        failures = []

        def writer():
            k = 0
            while not stop.is_set():
                model.observe(record(k % 10, k % 20, 0.5 + (k % 7) * 0.3, t=float(k)))
                k += 1

        def reader():
            while not stop.is_set():
                matrix = model.predict_matrix()
                if matrix.size and not np.all(np.isfinite(matrix)):
                    failures.append("non-finite prediction")

        threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join()
        assert not failures


class TestBackgroundTrainer:
    def test_replays_while_running(self):
        model = make_model()
        for k in range(100):
            model.observe(record(k % 5, k % 8, 1.0, t=0.0))
        trainer = BackgroundTrainer(model, clock=lambda: 0.0)
        with trainer:
            deadline = time.time() + 3.0
            while trainer.replays_applied == 0 and time.time() < deadline:
                time.sleep(0.01)
        assert trainer.replays_applied > 0
        assert not trainer.running

    def test_improves_training_error(self):
        model = make_model()
        rng = np.random.default_rng(0)
        base = np.outer(rng.uniform(0.5, 2, 8), rng.uniform(0.5, 2, 12))
        for u in range(8):
            for s in range(12):
                model.observe(record(u, s, float(base[u, s]), t=0.0))
        before = model.training_error()
        trainer = BackgroundTrainer(model, clock=lambda: 0.0)
        with trainer:
            time.sleep(0.5)
        assert model.training_error() < before

    def test_expires_stale_samples(self):
        model = make_model()
        for k in range(50):
            model.observe(record(k % 5, k, 1.0, t=0.0))
        trainer = BackgroundTrainer(model, clock=lambda: 10_000.0)
        with trainer:
            deadline = time.time() + 3.0
            while model.n_stored_samples > 0 and time.time() < deadline:
                time.sleep(0.01)
        assert model.n_stored_samples == 0
        assert trainer.expired == 50

    def test_idles_on_empty_store(self):
        model = make_model()
        trainer = BackgroundTrainer(model)
        with trainer:
            time.sleep(0.05)
            assert trainer.replays_applied == 0  # nothing to replay, no crash

    def test_start_idempotent_and_restartable(self):
        model = make_model()
        model.observe(record(0, 0, 1.0))
        trainer = BackgroundTrainer(model, clock=lambda: 0.0)
        trainer.start()
        trainer.start()  # no-op
        assert trainer.running
        trainer.stop()
        assert not trainer.running
        trainer.start()  # restart after stop
        assert trainer.running
        trainer.stop()

    def test_invalid_construction(self):
        model = make_model()
        with pytest.raises(ValueError):
            BackgroundTrainer(model, batch_size=0)
        with pytest.raises(ValueError):
            BackgroundTrainer(model, idle_sleep=0.0)

    def test_observations_during_replay(self):
        """Arrivals and background replay interleave without corruption."""
        model = make_model()
        for k in range(50):
            model.observe(record(k % 5, k % 9, 1.0, t=0.0))
        trainer = BackgroundTrainer(model, clock=lambda: 0.0)
        with trainer:
            for k in range(300):
                model.observe(record(k % 7, k % 11, 2.0, t=0.0))
        matrix = model.predict_matrix()
        assert np.all(np.isfinite(matrix))
        assert model.updates_applied >= 350
