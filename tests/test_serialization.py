"""Tests for AMF model save/load round-trips."""

import numpy as np
import pytest

from repro.core import (
    AdaptiveMatrixFactorization,
    AMFConfig,
    StreamTrainer,
    load_model,
    save_model,
)
from repro.datasets.schema import QoSRecord


def trained_model(seed=0, n=300):
    model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=seed)
    rng = np.random.default_rng(seed)
    for k in range(n):
        model.observe(
            QoSRecord(
                timestamp=float(k),
                user_id=int(rng.integers(10)),
                service_id=int(rng.integers(20)),
                value=float(rng.uniform(0.1, 5.0)),
            )
        )
    return model


class TestRoundTrip:
    def test_predictions_identical(self, tmp_path):
        model = trained_model()
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        restored = load_model(path, rng=1)
        np.testing.assert_array_equal(restored.predict_matrix(), model.predict_matrix())

    def test_config_restored(self, tmp_path):
        model = AdaptiveMatrixFactorization(
            AMFConfig.for_throughput(rank=7, beta=0.4), rng=0
        )
        model.observe(QoSRecord(timestamp=0, user_id=0, service_id=0, value=10.0))
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        restored = load_model(path)
        assert restored.config == model.config

    def test_error_trackers_restored(self, tmp_path):
        model = trained_model()
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        restored = load_model(path)
        np.testing.assert_allclose(
            restored.weights.user_error_snapshot(), model.weights.user_error_snapshot()
        )
        np.testing.assert_allclose(
            restored.weights.service_error_snapshot(),
            model.weights.service_error_snapshot(),
        )

    def test_sample_store_restored(self, tmp_path):
        model = trained_model()
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        restored = load_model(path)
        assert restored.n_stored_samples == model.n_stored_samples
        for key in model._store.keys():
            assert restored._store.get(*key) == model._store.get(*key)

    def test_updates_counter_restored(self, tmp_path):
        model = trained_model()
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        assert load_model(path).updates_applied == model.updates_applied

    def test_restored_model_keeps_learning(self, tmp_path):
        """A restored model must continue online training seamlessly."""
        model = trained_model()
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        restored = load_model(path, rng=2)
        trainer = StreamTrainer(restored)
        report = trainer.replay_until_converged(now=float(10**6 - 1))
        assert report.replays > 0 or report.expired > 0
        restored.observe(QoSRecord(timestamp=0, user_id=50, service_id=60, value=1.0))
        assert restored.n_users == 51  # new entities still register

    def test_empty_model_roundtrip(self, tmp_path):
        model = AdaptiveMatrixFactorization(rng=0)
        path = str(tmp_path / "empty.npz")
        save_model(model, path)
        restored = load_model(path)
        assert restored.n_users == 0
        assert restored.n_stored_samples == 0

    def test_newer_format_rejected(self, tmp_path):
        import repro.core.serialization as serialization

        model = trained_model(n=10)
        path = str(tmp_path / "model.npz")
        original = serialization.FORMAT_VERSION
        try:
            serialization.FORMAT_VERSION = 99
            save_model(model, path)
        finally:
            serialization.FORMAT_VERSION = original
        with pytest.raises(ValueError, match="newer"):
            load_model(path)
