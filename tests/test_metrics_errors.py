"""Tests for the Section V-B metrics: MAE, MRE, NPRE, and helpers.

Each metric is verified against hand-computed values, then hypothesis
checks the invariants (non-negativity, zero iff perfect, scale behavior).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    error_histogram,
    improvement_percent,
    mae,
    mre,
    npre,
    relative_errors,
    rmse,
    score_all,
)

positive_arrays = st.lists(
    st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=40
).map(np.array)


class TestMAE:
    def test_hand_computed(self):
        assert mae(np.array([1.0, 2.0]), np.array([1.5, 1.0])) == pytest.approx(0.75)

    def test_perfect_prediction(self):
        assert mae(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            mae(np.array([]), np.array([]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mae(np.array([1.0]), np.array([1.0, 2.0]))

    @given(actual=positive_arrays)
    @settings(max_examples=50)
    def test_nonnegative(self, actual):
        predicted = actual * 1.1
        assert mae(predicted, actual) >= 0


class TestRMSE:
    def test_hand_computed(self):
        assert rmse(np.array([0.0, 2.0]), np.array([0.0, 0.0])) == pytest.approx(np.sqrt(2))

    def test_rmse_at_least_mae(self):
        rng = np.random.default_rng(0)
        predicted, actual = rng.random(50), rng.random(50)
        assert rmse(predicted, actual) >= mae(predicted, actual) - 1e-12


class TestRelativeErrors:
    def test_hand_computed(self):
        out = relative_errors(np.array([2.0, 9.0]), np.array([1.0, 10.0]))
        np.testing.assert_allclose(out, [1.0, 0.1])

    def test_zero_actual_floored(self):
        out = relative_errors(np.array([1.0]), np.array([0.0]), floor=0.5)
        assert out[0] == pytest.approx(2.0)

    def test_matrix_input_flattened(self):
        out = relative_errors(np.ones((2, 2)), np.ones((2, 2)) * 2)
        assert out.shape == (4,)


class TestMRE:
    def test_median_not_mean(self):
        # Errors: 0.1, 0.1, 10 -> median 0.1 (mean would be ~3.4).
        predicted = np.array([1.1, 1.1, 11.0])
        actual = np.array([1.0, 1.0, 1.0])
        assert mre(predicted, actual) == pytest.approx(0.1)

    def test_paper_motivating_example(self):
        """Section IV-C-1: prediction (b) is better than (a) on relative
        error even though (a) wins on MAE."""
        actual = np.array([1.0, 100.0])
        prediction_a = np.array([8.0, 99.0])
        prediction_b = np.array([0.9, 92.0])
        assert mae(prediction_a, actual) < mae(prediction_b, actual)
        assert mre(prediction_b, actual) < mre(prediction_a, actual)

    @given(actual=positive_arrays, scale=st.floats(min_value=0.5, max_value=2.0))
    @settings(max_examples=50)
    def test_scale_invariance(self, actual, scale):
        """Relative metrics don't change when both sides are rescaled."""
        predicted = actual * 1.2
        assert mre(predicted * scale, actual * scale) == pytest.approx(
            mre(predicted, actual)
        )


class TestNPRE:
    def test_90th_percentile(self):
        actual = np.ones(100)
        predicted = np.ones(100)
        predicted[:15] = 2.0  # worst 15% have relative error 1.0
        assert npre(predicted, actual) == pytest.approx(1.0)
        # ...but the worst 5% alone stay below the 90th percentile.
        predicted = np.ones(100)
        predicted[:5] = 2.0
        assert npre(predicted, actual) == pytest.approx(0.0, abs=1e-9)

    def test_custom_percentile(self):
        predicted = np.array([1.0, 1.5, 2.0])
        actual = np.ones(3)
        assert npre(predicted, actual, percentile=50) == pytest.approx(0.5)

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            npre(np.ones(3), np.ones(3), percentile=100)

    def test_npre_at_least_mre(self):
        rng = np.random.default_rng(1)
        predicted, actual = rng.random(60) + 0.5, rng.random(60) + 0.5
        assert npre(predicted, actual) >= mre(predicted, actual)


class TestScoreAll:
    def test_keys(self):
        scores = score_all(np.ones(5), np.ones(5) * 2)
        assert set(scores) == {"MAE", "MRE", "NPRE"}

    def test_consistent_with_individual(self):
        rng = np.random.default_rng(2)
        predicted, actual = rng.random(30) + 0.1, rng.random(30) + 0.1
        scores = score_all(predicted, actual)
        assert scores["MAE"] == mae(predicted, actual)
        assert scores["MRE"] == mre(predicted, actual)
        assert scores["NPRE"] == npre(predicted, actual)


class TestErrorHistogram:
    def test_mass_sums_to_at_most_one(self):
        rng = np.random.default_rng(0)
        predicted, actual = rng.random(200), rng.random(200)
        __, density = error_histogram(predicted, actual)
        assert 0.0 < density.sum() <= 1.0 + 1e-12

    def test_centered_histogram_for_perfect_predictions(self):
        centers, density = error_histogram(np.ones(50), np.ones(50), bins=3)
        assert density[np.argmin(np.abs(centers))] == pytest.approx(1.0)

    def test_out_of_range_mass_dropped(self):
        __, density = error_histogram(
            np.array([100.0]), np.array([0.0]), value_range=(-1, 1)
        )
        assert density.sum() == 0.0

    def test_bin_count(self):
        centers, density = error_histogram(np.ones(5), np.ones(5), bins=17)
        assert centers.shape == (17,) and density.shape == (17,)

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            error_histogram(np.ones(5), np.ones(5), bins=0)


class TestImprovement:
    def test_paper_convention(self):
        # AMF 0.478 vs best other 0.593 -> 19.4% (Table I, RT MRE @ 10%).
        assert improvement_percent(0.593, 0.478) == pytest.approx(19.4, abs=0.05)

    def test_negative_when_worse(self):
        assert improvement_percent(1.0, 1.1) == pytest.approx(-10.0)

    def test_invalid_baseline(self):
        with pytest.raises(ValueError):
            improvement_percent(0.0, 0.5)
