"""Bounded-memory entity lifecycle: tiering, spill/revive, pressure.

The tiered model must be *transparent* — same math, same RNG stream,
same recovery guarantees as the unbounded model — while holding resident
state to a fixed hot-tier budget.  These tests pin the transparency
contract at the model level (slot indirection, demotion determinism,
bit-exact revival, RNG alignment), the durability contract (lifecycle
state in checkpoints, revive events in the WAL, byte-equal archives
across kill-and-restart), and the degradation ladder (watchdog levels,
capacity tightening, cold-read shedding that never touches hot
predictions).
"""

import os
import tempfile

import numpy as np
import pytest

from repro.core.amf import AdaptiveMatrixFactorization
from repro.datasets.schema import QoSRecord
from repro.lifecycle import (
    ColdEntityError,
    LifecycleConfig,
    MemoryWatchdog,
    SpillStore,
    TieredAMF,
)
from repro.server.app import PredictionServer
from repro.server.client import PredictionClient, RetryableServiceError


def stream(n, seed=0, n_users=40, n_services=20):
    rng = np.random.default_rng(seed)
    return [
        QoSRecord(
            timestamp=float(k),
            user_id=int(rng.integers(n_users)),
            service_id=int(rng.integers(n_services)),
            value=float(rng.uniform(0.05, 5.0)),
        )
        for k in range(n)
    ]


def drive(model, records):
    """Feed records through the reviving observe; returns per-sample errors."""
    return [model.observe_reviving(record)[1] for record in records]


def tiered(seed=0, hot_users=8, hot_services=8, **kwargs):
    lifecycle = LifecycleConfig(
        hot_users=hot_users, hot_services=hot_services, **kwargs
    )
    return TieredAMF(rng=seed, lifecycle=lifecycle, spill=SpillStore(":memory:"))


class TestTieredModel:
    def test_hot_tier_never_exceeds_capacity(self):
        model = tiered(hot_users=8, hot_services=6)
        drive(model, stream(400, n_users=60, n_services=30))
        assert len(model._u_slot_of) <= 8
        assert len(model._s_slot_of) <= 6
        status = model.lifecycle_status()
        assert status["demoted_users"] > 0
        assert status["spilled_users"] + status["hot_users"] == 60

    def test_spill_invariant_row_present_iff_spilled(self):
        model = tiered()
        drive(model, stream(300, n_users=50))
        assert set(model._spill.keys("user")) == model._spilled_users
        assert set(model._spill.keys("service")) == model._spilled_services
        # Hot and spilled partition the known population.
        assert not (model._spilled_users & set(model._u_slot_of))

    def test_observe_on_cold_entity_raises(self):
        model = tiered()
        drive(model, stream(300, n_users=50))
        cold = next(iter(model._spilled_users))
        with pytest.raises(ColdEntityError, match="spilled"):
            model.observe(QoSRecord(1000.0, cold, 0, 1.0))

    def test_revive_restores_state_bit_exact(self):
        model = tiered(hot_users=8)
        records = stream(200, n_users=8, n_services=8)
        drive(model, records)
        target = 3
        row_before = model._user_factors.row(model._u_slot_of[target]).copy()
        err_before = model.weights.user_error(model._u_slot_of[target])
        # Push enough fresh users through to force the target out.
        drive(model, stream(120, seed=7, n_users=200, n_services=8))
        assert target in model._spilled_users
        payload = model.revive_payload("user", target)
        model.apply_revive("user", target, payload)
        slot = model._u_slot_of[target]
        assert np.array_equal(model._user_factors.row(slot), row_before)
        assert model.weights.user_error(slot) == err_before
        assert target not in model._spilled_users
        assert model._spill.get("user", target) is None

    def test_demotion_is_deterministic(self):
        records = stream(500, n_users=80, n_services=40)
        first, second = tiered(), tiered()
        errors_a = drive(first, records)
        errors_b = drive(second, records)
        assert errors_a == errors_b
        assert first.lifecycle_state() == second.lifecycle_state()
        assert sorted(first._spill.keys("user")) == sorted(
            second._spill.keys("user")
        )

    def test_rng_alignment_with_uncapped_baseline(self):
        """Per-sample errors of a capped model match an uncapped one.

        Fresh slot allocation draws exactly one init vector and revival
        draws zero, so RNG consumption aligns 1:1 with entity
        first-touches regardless of tiering — the property that makes
        the bounded-vs-unbounded MAE comparison in
        ``scripts/bench_lifecycle.py`` an equality, not a tolerance.
        """
        records = stream(600, n_users=100, n_services=50)
        bounded = tiered(hot_users=8, hot_services=8)
        unbounded = tiered(hot_users=10_000, hot_services=10_000)
        assert drive(bounded, records) == drive(unbounded, records)
        assert bounded.lifecycle_status()["demoted_users"] > 0
        assert unbounded.lifecycle_status()["demoted_users"] == 0

    def test_revive_events_replay_to_identical_state(self):
        """Applying the logged (kind, id, payload) events on a follower
        reproduces the leader's state exactly — the standby/recovery path."""
        records = stream(400, n_users=60, n_services=30)
        leader, follower = tiered(), tiered()
        for record in records:
            events, __ = leader.observe_reviving(record)
            for kind, ext_id, payload in events:
                follower.apply_revive(kind, ext_id, payload)
            follower.observe(record)
        assert leader.lifecycle_state() == follower.lifecycle_state()
        for ext, slot in leader._u_slot_of.items():
            assert np.array_equal(
                leader._user_factors.row(slot),
                follower._user_factors.row(follower._u_slot_of[ext]),
            )


class TestPressure:
    def test_apply_pressure_shrinks_and_demotes(self):
        model = tiered(hot_users=16, hot_services=16)
        drive(model, stream(300, n_users=16, n_services=16))
        before = len(model._u_slot_of)
        model.apply_pressure(6, 6, "tighten")
        assert model._hot_users == 6
        assert len(model._u_slot_of) <= 6
        assert len(model._u_slot_of) < before
        assert model.lifecycle_status()["pressure_level"] == "tighten"

    def test_pressure_event_is_replayable(self):
        records = stream(200, n_users=30, n_services=15)
        organic, replayed = tiered(hot_users=16, hot_services=16), tiered(
            hot_users=16, hot_services=16
        )
        drive(organic, records)
        drive(replayed, records)
        organic.apply_pressure(5, 5, "tighten")
        replayed.apply_event("pressure", {"hu": 5, "hs": 5, "level": "tighten"})
        assert organic.lifecycle_state() == replayed.lifecycle_state()

    def test_watchdog_ladder(self):
        """ok -> tighten (sustained) -> critical+shed -> recovery."""
        lifecycle = LifecycleConfig(
            hot_users=16,
            hot_services=16,
            memory_limit_bytes=1000,
            min_hot=4,
            sustain_polls=2,
        )
        usage = {"bytes": 100}
        caps = {"hot": (16, 16)}
        tightened = []
        shed_flags = []

        def on_tighten(hot_users, hot_services, level):
            caps["hot"] = (hot_users, hot_services)
            tightened.append((hot_users, hot_services, level))

        dog = MemoryWatchdog(
            lifecycle,
            usage=lambda: usage["bytes"],
            capacities=lambda: caps["hot"],
            on_tighten=on_tighten,
            on_shed=shed_flags.append,
        )
        assert dog.poll_once() == "ok"
        usage["bytes"] = 850  # >= 80%: needs sustain_polls before acting
        assert dog.poll_once() == "ok"
        assert not tightened
        assert dog.poll_once() == "tighten"
        assert tightened[-1] == (11, 11, "tighten")
        usage["bytes"] = 990  # >= 95%
        dog.poll_once()
        assert dog.poll_once() == "critical"
        assert shed_flags[-1] is True
        usage["bytes"] = 100
        assert dog.poll_once() == "ok"
        assert shed_flags[-1] is False
        # The floor holds however long pressure persists.
        usage["bytes"] = 990
        for __ in range(10):
            dog.poll_once()
        assert caps["hot"][0] >= lifecycle.min_hot

    def test_watchdog_requires_limit(self):
        with pytest.raises(ValueError, match="memory_limit_bytes"):
            MemoryWatchdog(
                LifecycleConfig(),
                usage=lambda: 0,
                capacities=lambda: (4, 4),
                on_tighten=lambda *a: None,
                on_shed=lambda *a: None,
            )


class TestServerLifecycle:
    def _churn(self, client, n=240, users=12, services=6, start=0):
        # users > hot_users forces demotion churn; services stays under
        # hot_services so candidate predictions hit the model, not the
        # cold-service fallback.
        for k in range(n):
            client.report_observation(
                start + (k % users),
                k % services,
                value=0.5 + (k % 9) * 0.4,
                timestamp=float(k),
            )

    def test_server_tiers_and_revives_on_read(self):
        lifecycle = LifecycleConfig(hot_users=8, hot_services=8)
        with tempfile.TemporaryDirectory() as data_dir:
            with PredictionServer(
                rng=0,
                background_replay=False,
                data_dir=data_dir,
                lifecycle=lifecycle,
            ) as server:
                client = PredictionClient(server.address)
                self._churn(client)
                status = client.status()["lifecycle"]
                assert status["demoted_users"] > 0
                assert status["hot_users"] <= 8
                assert os.path.exists(os.path.join(data_dir, "spill.sqlite"))
                cold = server.model.with_model(
                    lambda m: sorted(m._spilled_users)[0]
                )
                result = client.predict_candidates_detailed(cold, [0, 1])
                assert "model" in result["sources"].values()
                assert server.model.with_model(lambda m: m.knows_user(cold))
                assert client.status()["lifecycle"]["revived_users"] > 0
                client.close()

    def test_crash_recovery_bit_exact_with_spilled_entities(self):
        from repro.simulation.faults import run_crash_recovery

        records = stream(300, seed=2, n_users=60, n_services=30)
        with tempfile.TemporaryDirectory() as root:
            data_dir = os.path.join(root, "crash")
            report = run_crash_recovery(
                records,
                crash_after=190,
                data_dir=data_dir,
                rng=2,
                checkpoint_interval=75,
                server_kwargs={
                    "lifecycle": LifecycleConfig(hot_users=16, hot_services=16)
                },
                baseline_data_dir=os.path.join(root, "baseline"),
            )
            assert report.matches, report.summary()
            digests = report.detail["checkpoint_digests"]
            assert digests["recovered"] == digests["baseline"]
            spill = SpillStore(os.path.join(data_dir, "spill.sqlite"))
            assert spill.count() > 0
            spill.close()

    def test_memory_pressure_drill(self):
        """End-to-end degradation: tighten to the floor, shed cold reads
        with 429 + Retry-After, keep hot predictions answering, recover
        bit-exact after a kill."""
        from repro.simulation.faults import run_memory_pressure

        records = stream(240, seed=3, n_users=60, n_services=24)
        with tempfile.TemporaryDirectory() as data_dir:
            report = run_memory_pressure(
                records,
                data_dir=data_dir,
                rng=3,
                checkpoint_interval=80,
                hot_users=16,
                hot_services=16,
            )
        assert report.matches, report.summary()
        assert report.metrics_ok

    def test_cold_read_sheds_only_under_critical_pressure(self):
        lifecycle = LifecycleConfig(hot_users=8, hot_services=8)
        with tempfile.TemporaryDirectory() as data_dir:
            with PredictionServer(
                rng=0,
                background_replay=False,
                data_dir=data_dir,
                lifecycle=lifecycle,
            ) as server:
                client = PredictionClient(server.address, retries=0)
                self._churn(client)
                cold = server.model.with_model(
                    lambda m: sorted(m._spilled_users)[0]
                )
                server._shed_cold_reads = True
                with pytest.raises(RetryableServiceError) as exc_info:
                    client.predict_candidates(cold, [0])
                assert exc_info.value.status == 429
                assert exc_info.value.retry_after is not None
                # Hot-tier predictions keep answering under the same flag.
                hot = server.model.with_model(
                    lambda m: sorted(m._u_slot_of)[0]
                )
                detail = client.predict_candidates_detailed(hot, [0, 1])
                assert "model" in detail["sources"].values()
                server._shed_cold_reads = False
                assert client.predict_candidates(cold, [0])
                client.close()


class TestStoreOrderDeterminism:
    def test_drop_user_discards_in_sorted_order(self):
        """The store's physical row order must be a function of the
        logical op sequence alone.  ``drop_user`` swap-removes one peer
        at a time; iterating the peer *set* directly would make the
        resulting order depend on set internals — which differ between
        an organically-built index and one rebuilt from a checkpoint —
        and break byte-equal archives across recovery."""
        flat = AdaptiveMatrixFactorization(rng=0)
        for k in range(6):
            flat.observe(QoSRecord(float(k), 0, k, 1.0))
        for k in range(3):
            flat.observe(QoSRecord(10.0 + k, 1, k, 1.0))
        flat._store.drop_user(0)
        # Swap-remove pulls the tail into vacated positions in peer-sorted
        # order; the survivors land deterministically.
        size = len(flat._store)
        assert size == 3
        keys = flat._store._keys[:size]
        assert keys == [(1, 2), (1, 1), (1, 0)]


class TestSpillCompaction:
    def test_spill_file_shrinks_after_mass_drop(self):
        """Deleted rows leave sqlite free pages; without incremental
        vacuum a long churn run's spill file grows without bound.  After
        a mass forget the file must actually shrink on disk."""
        payload = b"x" * 2048
        with tempfile.TemporaryDirectory() as root:
            path = os.path.join(root, "spill.sqlite")
            spill = SpillStore(path, compact_threshold_pages=8)
            for ext_id in range(800):
                spill.put("user", ext_id, payload)
            spill.commit()
            grown = os.path.getsize(path)
            assert grown > 800 * len(payload)  # rows really hit disk
            for ext_id in range(780):
                spill.delete("user", ext_id)
            spill.commit()
            assert spill.freelist_pages() > 8
            assert spill.maybe_compact()
            shrunk = os.path.getsize(path)
            assert shrunk < grown / 4, (grown, shrunk)
            assert spill.freelist_pages() == 0
            # Surviving rows are untouched by the vacuum.
            assert spill.count("user") == 20
            assert spill.get("user", 799) == payload
            spill.close()

    def test_maybe_compact_is_cheap_below_threshold(self):
        with tempfile.TemporaryDirectory() as root:
            spill = SpillStore(os.path.join(root, "s.sqlite"))
            spill.put("user", 1, b"a")
            spill.commit()
            assert spill.maybe_compact() is False
            assert spill.compactions == 0
            spill.close()

    def test_legacy_file_is_migrated_to_incremental_vacuum(self):
        """A spill file created before compaction existed (auto_vacuum
        off) gets one full VACUUM on open, after which incremental
        vacuum works."""
        import sqlite3

        with tempfile.TemporaryDirectory() as root:
            path = os.path.join(root, "legacy.sqlite")
            conn = sqlite3.connect(path)
            conn.execute(
                "CREATE TABLE entities (kind TEXT NOT NULL, ext_id INTEGER "
                "NOT NULL, payload BLOB NOT NULL, PRIMARY KEY (kind, ext_id)"
                ") WITHOUT ROWID"
            )
            conn.execute(
                "INSERT INTO entities VALUES ('user', 7, ?)",
                (sqlite3.Binary(b"keep"),),
            )
            conn.commit()
            assert int(conn.execute("PRAGMA auto_vacuum").fetchone()[0]) == 0
            conn.close()
            spill = SpillStore(path, compact_threshold_pages=1)
            assert spill.get("user", 7) == b"keep"
            for ext_id in range(200):
                spill.put("user", ext_id, b"y" * 2048)
            spill.commit()
            before = os.path.getsize(path)
            for ext_id in range(200):
                spill.delete("user", ext_id)
            spill.commit()
            assert spill.maybe_compact()
            assert os.path.getsize(path) < before
            assert spill.get("user", 7) is None or spill.get("user", 7) == b"keep"
            spill.close()
