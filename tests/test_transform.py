"""Tests for repro.core.transform: sigmoid link and the Box-Cox pipeline.

Includes hypothesis property tests for the invariants the paper relies on:
Box-Cox is strictly increasing (rank-preserving) and invertible, and the
normalizer maps [value_min, value_max] onto [0, 1] monotonically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transform import (
    BoxCoxTransform,
    QoSNormalizer,
    logit,
    sigmoid,
    sigmoid_derivative,
)

alphas = st.one_of(
    st.just(0.0),
    st.just(1.0),
    st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
)
qos_values = st.floats(min_value=1e-3, max_value=20.0, allow_nan=False)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(0.0) == pytest.approx(0.5)

    def test_symmetry(self):
        assert sigmoid(2.0) + sigmoid(-2.0) == pytest.approx(1.0)

    def test_extreme_values_do_not_overflow(self):
        assert sigmoid(1000.0) == pytest.approx(1.0)
        assert sigmoid(-1000.0) == pytest.approx(0.0)

    def test_vectorized(self):
        out = sigmoid(np.array([-1.0, 0.0, 1.0]))
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)

    def test_scalar_returns_float(self):
        assert isinstance(sigmoid(0.3), float)

    def test_derivative_matches_finite_difference(self):
        xs = np.linspace(-4, 4, 17)
        h = 1e-6
        numeric = (sigmoid(xs + h) - sigmoid(xs - h)) / (2 * h)
        np.testing.assert_allclose(sigmoid_derivative(xs), numeric, atol=1e-8)

    def test_derivative_peak_at_zero(self):
        assert sigmoid_derivative(0.0) == pytest.approx(0.25)

    def test_logit_inverts_sigmoid(self):
        xs = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(logit(sigmoid(xs)), xs, atol=1e-9)

    def test_logit_clips_edges(self):
        assert np.isfinite(logit(0.0))
        assert np.isfinite(logit(1.0))


class TestBoxCox:
    def test_alpha_zero_is_log(self):
        transform = BoxCoxTransform(alpha=0.0)
        assert transform.forward(np.e) == pytest.approx(1.0)

    def test_alpha_one_is_shifted_identity(self):
        transform = BoxCoxTransform(alpha=1.0)
        assert transform.forward(3.0) == pytest.approx(2.0)  # (x - 1) / 1

    def test_paper_alpha_rt(self):
        # Spot value: (x^a - 1)/a with a = -0.007, x = 2.
        transform = BoxCoxTransform(alpha=-0.007)
        expected = (2.0**-0.007 - 1.0) / -0.007
        assert transform.forward(2.0) == pytest.approx(expected)

    def test_floor_clamps_zero_input(self):
        transform = BoxCoxTransform(alpha=-0.05, floor=1e-3)
        assert np.isfinite(transform.forward(0.0))
        assert transform.forward(0.0) == transform.forward(1e-3)

    @given(alpha=alphas, x=qos_values)
    @settings(max_examples=200)
    def test_roundtrip(self, alpha, x):
        transform = BoxCoxTransform(alpha=alpha)
        assert transform.inverse(transform.forward(x)) == pytest.approx(x, rel=1e-6)

    @given(alpha=alphas, x=qos_values, y=qos_values)
    @settings(max_examples=200)
    def test_strictly_increasing(self, alpha, x, y):
        transform = BoxCoxTransform(alpha=alpha)
        if abs(x - y) < 1e-9:
            return
        low, high = sorted((x, y))
        assert transform.forward(low) < transform.forward(high)

    def test_vectorized_matches_scalar(self):
        transform = BoxCoxTransform(alpha=-0.007)
        xs = np.array([0.5, 1.0, 5.0])
        vector = transform.forward(xs)
        for k, x in enumerate(xs):
            assert vector[k] == pytest.approx(transform.forward(float(x)))

    def test_invalid_floor_rejected(self):
        with pytest.raises(ValueError, match="floor"):
            BoxCoxTransform(alpha=0.0, floor=0.0)


class TestQoSNormalizer:
    def test_maps_bounds_to_unit_interval(self):
        normalizer = QoSNormalizer(alpha=-0.007, value_min=0.0, value_max=20.0)
        assert normalizer.normalize(1e-3) == pytest.approx(0.0, abs=1e-9)
        assert normalizer.normalize(20.0) == pytest.approx(1.0)

    def test_out_of_range_clipped(self):
        normalizer = QoSNormalizer(alpha=1.0, value_min=0.0, value_max=10.0)
        assert normalizer.normalize(25.0) == 1.0
        assert normalizer.normalize(-5.0) == 0.0

    def test_linear_factory(self):
        normalizer = QoSNormalizer.linear(0.0, 10.0)
        assert normalizer.alpha == 1.0
        assert normalizer.normalize(5.0) == pytest.approx(0.5, abs=1e-3)

    @given(x=qos_values)
    @settings(max_examples=150)
    def test_roundtrip_rt_config(self, x):
        normalizer = QoSNormalizer(alpha=-0.007, value_min=0.0, value_max=20.0)
        assert normalizer.denormalize(normalizer.normalize(x)) == pytest.approx(
            x, rel=1e-5, abs=1e-5
        )

    @given(x=qos_values, y=qos_values)
    @settings(max_examples=150)
    def test_rank_preserving(self, x, y):
        normalizer = QoSNormalizer(alpha=-0.05, value_min=0.0, value_max=20.0)
        if abs(x - y) < 1e-9:
            return
        low, high = sorted((x, y))
        assert normalizer.normalize(low) <= normalizer.normalize(high)

    def test_transformed_skew_reduced_on_lognormal(self):
        """The point of the transform (Fig. 7 -> Fig. 8): less skew."""
        rng = np.random.default_rng(0)
        raw = np.clip(rng.lognormal(mean=0.0, sigma=1.0, size=5000), 0, 20)
        normalizer = QoSNormalizer(alpha=-0.007, value_min=0.0, value_max=20.0)
        transformed = np.asarray(normalizer.normalize(raw))

        def skew(v):
            return abs(np.mean((v - v.mean()) ** 3) / v.std() ** 3)

        assert skew(transformed) < skew(raw) / 2

    def test_degenerate_range_rejected(self):
        with pytest.raises(ValueError, match="value_max"):
            QoSNormalizer(alpha=1.0, value_min=5.0, value_max=5.0)

    def test_denormalize_clamps_to_value_max(self):
        normalizer = QoSNormalizer(alpha=-0.007, value_min=0.0, value_max=20.0)
        assert normalizer.denormalize(1.0) <= 20.0
        assert normalizer.denormalize(2.0) <= 20.0  # clipped input
