"""Tests for the HTTP prediction service and its client."""

import json
import urllib.request

import pytest

from repro.core import AMFConfig
from repro.server import PredictionClient, PredictionServer
from repro.server.client import PredictionServiceError


@pytest.fixture()
def server():
    instance = PredictionServer(
        AMFConfig.for_response_time(), rng=0, background_replay=False
    )
    with instance:
        yield instance


@pytest.fixture()
def client(server):
    return PredictionClient(server.address)


class TestObservations:
    def test_report_returns_sample_error(self, client):
        error = client.report_observation(0, 0, value=1.5, timestamp=0.0)
        assert error > 0

    def test_batch_report(self, client):
        observations = [
            {"timestamp": float(k), "user_id": k % 3, "service_id": k % 5, "value": 1.0}
            for k in range(20)
        ]
        assert client.report_observations(observations) == 20

    def test_missing_field_is_client_error(self, client, server):
        with pytest.raises(PredictionServiceError, match="400"):
            client._request("POST", "/observations", {"user_id": 0})

    def test_invalid_value_is_client_error(self, client):
        with pytest.raises(PredictionServiceError, match="400"):
            client._request(
                "POST",
                "/observations",
                {"timestamp": 0.0, "user_id": 0, "service_id": 0, "value": "nan"},
            )


class TestPredictions:
    def test_predict_roundtrip(self, client):
        for k in range(200):
            client.report_observation(0, 0, value=2.0, timestamp=float(k))
        assert client.predict(0, 0) == pytest.approx(2.0, rel=0.3)

    def test_predict_unknown_pair_is_finite(self, client):
        value = client.predict(7, 13)
        assert 0.0 <= value <= 20.0

    def test_predict_candidates(self, client):
        predictions = client.predict_candidates(0, [1, 2, 3])
        assert set(predictions) == {1, 2, 3}
        assert all(0.0 <= v <= 20.0 for v in predictions.values())

    def test_negative_ids_rejected(self, client):
        with pytest.raises(PredictionServiceError, match="400"):
            client._request("GET", "/predictions?user_id=-1&service_id=0")

    def test_missing_query_rejected(self, client):
        with pytest.raises(PredictionServiceError, match="400"):
            client._request("GET", "/predictions")

    def test_empty_candidate_list_rejected(self, client):
        with pytest.raises(PredictionServiceError, match="400"):
            client.predict_candidates(0, [])


class TestStatusAndProtocol:
    def test_status_counts(self, client):
        client.report_observation(0, 0, value=1.0, timestamp=0.0)
        status = client.status()
        assert status["observations_handled"] == 1
        assert status["updates_applied"] >= 1
        assert status["stored_samples"] == 1

    def test_unknown_path_404(self, server):
        host, port = server.address
        request = urllib.request.Request(f"http://{host}:{port}/nope")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 404

    def test_malformed_json_400(self, server):
        host, port = server.address
        request = urllib.request.Request(
            f"http://{host}:{port}/observations",
            data=b"{not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_non_object_body_400(self, server):
        host, port = server.address
        request = urllib.request.Request(
            f"http://{host}:{port}/observations",
            data=json.dumps([1, 2]).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_unreachable_server_raises(self):
        client = PredictionClient(("127.0.0.1", 1), timeout=0.5)
        with pytest.raises(PredictionServiceError, match="cannot reach"):
            client.status()


class TestEndToEnd:
    def test_background_replay_improves_served_model(self):
        """With the daemon on, the served predictions converge between
        requests — the 'online updating' box of Fig. 3."""
        import time

        with PredictionServer(
            AMFConfig.for_response_time(), rng=1, background_replay=True
        ) as server:
            client = PredictionClient(server.address)
            import numpy as np

            rng = np.random.default_rng(0)
            base = np.outer(rng.uniform(0.5, 2, 6), rng.uniform(0.5, 2, 10))
            observations = [
                {"timestamp": 0.0, "user_id": u, "service_id": s, "value": float(base[u, s])}
                for u in range(6)
                for s in range(10)
            ]
            client.report_observations(observations)
            deadline = time.time() + 3.0
            while client.status()["background_replays"] < 2000 and time.time() < deadline:
                time.sleep(0.02)
            errors = [
                abs(client.predict(u, s) - base[u, s]) / base[u, s]
                for u in range(6)
                for s in range(10)
            ]
            assert float(np.median(errors)) < 0.25

    def test_collaborative_prediction_across_clients(self):
        """Two 'applications' share one service: user 1's uploads improve
        the service profile user 0 is predicted against."""
        with PredictionServer(
            AMFConfig.for_response_time(), rng=2, background_replay=False
        ) as server:
            a = PredictionClient(server.address)
            b = PredictionClient(server.address)
            for k in range(150):
                a.report_observation(0, 0, value=1.0, timestamp=float(k))
                b.report_observation(1, 0, value=1.0, timestamp=float(k))
            status = a.status()
            assert status["observations_handled"] == 300
