"""Property-based tests for the workflow QoS aggregation rules.

Hypothesis generates random composition trees and per-task QoS values; the
classic structural inequalities of Zeng et al.'s rules must always hold.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptation.aggregation import Branch, Loop, Parallel, Sequence_, Task

qos = st.floats(min_value=1e-3, max_value=100.0, allow_nan=False)


@st.composite
def tree_and_values(draw, max_depth=3):
    """A random composition tree with unique task names + a value mapping."""
    counter = {"next": 0}

    def fresh_task():
        name = f"t{counter['next']}"
        counter["next"] += 1
        return Task(name)

    def build(depth):
        if depth >= max_depth or draw(st.booleans()):
            return fresh_task()
        kind = draw(st.sampled_from(["seq", "par", "branch", "loop"]))
        if kind == "loop":
            return Loop(build(depth + 1), iterations=draw(st.integers(1, 4)))
        n_children = draw(st.integers(2, 3))
        children = [build(depth + 1) for __ in range(n_children)]
        if kind == "seq":
            return Sequence_(children)
        if kind == "par":
            return Parallel(children)
        raw = [draw(st.floats(0.05, 1.0)) for __ in range(n_children)]
        total = sum(raw)
        return Branch(children, [value / total for value in raw])

    tree = build(0)
    values = {name: draw(qos) for name in tree.task_names()}
    return tree, values


class TestStructuralInvariants:
    @given(data=tree_and_values())
    @settings(max_examples=120, deadline=None)
    def test_outputs_positive_and_finite(self, data):
        tree, values = data
        assert np.isfinite(tree.response_time(values))
        assert tree.response_time(values) > 0
        assert np.isfinite(tree.throughput(values))
        assert tree.throughput(values) > 0

    @given(data=tree_and_values())
    @settings(max_examples=120, deadline=None)
    def test_response_time_bounds(self, data):
        """End-to-end RT is at least the max single task (everything runs at
        least once on some path... except exclusive branches, which weight)
        and at most iterations-weighted sum of all tasks."""
        tree, values = data
        rt = tree.response_time(values)
        # Upper bound: every task contributes at most (4^depth) times; use a
        # generous structural bound of 4^3 * sum.
        assert rt <= 64 * sum(values.values()) + 1e-9
        assert rt >= min(values.values()) * 0.05 - 1e-9  # branch floors

    @given(data=tree_and_values())
    @settings(max_examples=120, deadline=None)
    def test_throughput_bounded_by_total_capacity(self, data):
        """Workflow throughput can never exceed the sum of all task
        throughputs (parallel fan-out is the only amplifier)."""
        tree, values = data
        assert tree.throughput(values) <= sum(values.values()) + 1e-9

    @given(data=tree_and_values(), factor=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=80, deadline=None)
    def test_homogeneity(self, data, factor):
        """All rules are linear-homogeneous: scaling every task's QoS by a
        factor scales the workflow QoS by the same factor."""
        tree, values = data
        scaled = {name: value * factor for name, value in values.items()}
        assert tree.response_time(scaled) == np.float64(
            factor
        ) * tree.response_time(values) or np.isclose(
            tree.response_time(scaled), factor * tree.response_time(values), rtol=1e-9
        )
        assert np.isclose(
            tree.throughput(scaled), factor * tree.throughput(values), rtol=1e-9
        )

    @given(data=tree_and_values())
    @settings(max_examples=80, deadline=None)
    def test_monotonicity_in_each_task(self, data):
        """Making one task slower never makes the workflow faster, and
        reducing one task's throughput never raises the workflow's."""
        tree, values = data
        rt_before = tree.response_time(values)
        tp_before = tree.throughput(values)
        victim = sorted(tree.task_names())[0]
        worse = dict(values)
        worse[victim] = values[victim] * 2.0  # slower RT
        assert tree.response_time(worse) >= rt_before - 1e-12
        starved = dict(values)
        starved[victim] = values[victim] * 0.5  # lower TP
        assert tree.throughput(starved) <= tp_before + 1e-12
