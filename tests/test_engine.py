"""Tests for the execution engine and the tensor-backed QoS oracle."""

import numpy as np
import pytest

from repro.adaptation import (
    SLA,
    AbstractTask,
    ExecutionEngine,
    GreedyReoptimizePolicy,
    QoSPredictionService,
    ServiceRegistry,
    TensorQoSOracle,
    ThresholdPolicy,
    UserManager,
    Workflow,
)
from repro.core import AMFConfig
from repro.datasets import generate_dataset


@pytest.fixture(scope="module")
def oracle_data():
    return generate_dataset(n_users=6, n_services=12, n_slices=4, seed=9)


class TestTensorQoSOracle:
    def test_slice_lookup(self, oracle_data):
        oracle = TensorQoSOracle(oracle_data, noise_sigma=0.0, rng=0)
        assert oracle.slice_at(0.0) == 0
        assert oracle.slice_at(899.9) == 0
        assert oracle.slice_at(900.0) == 1

    def test_wraps_past_end(self, oracle_data):
        oracle = TensorQoSOracle(oracle_data, noise_sigma=0.0, rng=0)
        assert oracle.slice_at(4 * 900.0) == 0

    def test_noiseless_matches_tensor(self, oracle_data):
        oracle = TensorQoSOracle(oracle_data, noise_sigma=0.0, rng=0)
        assert oracle.value(2, 3, 950.0) == oracle_data.tensor[1, 2, 3]

    def test_noise_stays_in_range(self, oracle_data):
        oracle = TensorQoSOracle(oracle_data, noise_sigma=0.5, rng=0)
        values = [oracle.value(0, 0, 0.0) for __ in range(100)]
        assert min(values) >= 0.0
        assert max(values) <= oracle_data.value_max

    def test_negative_time_rejected(self, oracle_data):
        oracle = TensorQoSOracle(oracle_data, rng=0)
        with pytest.raises(ValueError):
            oracle.slice_at(-1.0)

    def test_negative_noise_rejected(self, oracle_data):
        with pytest.raises(ValueError):
            TensorQoSOracle(oracle_data, noise_sigma=-0.1)


def build_engine(oracle_data, policy=None, sla=None):
    registry = ServiceRegistry()
    for sid in range(12):
        registry.register(sid, "t")
    workflow = Workflow(name="w", tasks=[AbstractTask("A", "t"), AbstractTask("B", "t")])
    workflow.bind("A", 0)
    workflow.bind("B", 1)
    predictor = QoSPredictionService(AMFConfig.for_response_time(), rng=0)
    oracle = TensorQoSOracle(oracle_data, noise_sigma=0.0, rng=0)
    return ExecutionEngine(
        user_id=0,
        workflow=workflow,
        registry=registry,
        predictor=predictor,
        policy=policy or GreedyReoptimizePolicy(period=1e9),
        oracle=oracle,
        sla=sla,
        users=UserManager(),
    )


class TestExecutionEngine:
    def test_execute_once_sums_components(self, oracle_data):
        engine = build_engine(oracle_data)
        total = engine.execute_once(now=0.0)
        expected = oracle_data.tensor[0, 0, 0] + oracle_data.tensor[0, 0, 1]
        assert total == pytest.approx(expected)
        assert engine.stats.invocations == 2
        assert engine.stats.executions == 1

    def test_observations_reach_predictor(self, oracle_data):
        engine = build_engine(oracle_data)
        engine.execute_once(now=0.0)
        assert engine.predictor.observations_handled == 2

    def test_run_counts(self, oracle_data):
        engine = build_engine(oracle_data)
        stats = engine.run(start=0.0, interval=10.0, count=5)
        assert stats.executions == 5
        assert len(stats.per_execution_times) == 5
        assert stats.mean_execution_time == pytest.approx(
            np.mean(stats.per_execution_times)
        )

    def test_sla_violations_counted(self, oracle_data):
        sla = SLA(attribute="rt", threshold=0.0)  # everything violates
        engine = build_engine(oracle_data, sla=sla)
        engine.execute_once(now=0.0)
        assert engine.stats.sla_violations == 2
        assert engine.stats.violation_rate == 1.0

    def test_policy_action_applied(self, oracle_data):
        policy = GreedyReoptimizePolicy(period=1.0)
        engine = build_engine(oracle_data, policy=policy)
        engine.run(start=0.0, interval=10.0, count=10)
        # The greedy policy will almost surely move off the initial binding.
        if policy.actions_taken:
            assert engine.stats.adaptations == len(engine.stats.actions)
            assert engine.workflow.working_services() != [0, 1]

    def test_unbound_workflow_rejected(self, oracle_data):
        registry = ServiceRegistry()
        registry.register(0, "t")
        workflow = Workflow(name="w", tasks=[AbstractTask("A", "t")])
        with pytest.raises(ValueError, match="fully bound"):
            ExecutionEngine(
                user_id=0,
                workflow=workflow,
                registry=registry,
                predictor=QoSPredictionService(rng=0),
                policy=GreedyReoptimizePolicy(),
                oracle=TensorQoSOracle(oracle_data, rng=0),
            )

    def test_binding_to_unavailable_service_rejected(self, oracle_data):
        registry = ServiceRegistry()
        registry.register(0, "t")
        registry.deregister(0)
        workflow = Workflow(name="w", tasks=[AbstractTask("A", "t")])
        workflow.bind("A", 0)
        with pytest.raises(ValueError, match="unavailable"):
            ExecutionEngine(
                user_id=0,
                workflow=workflow,
                registry=registry,
                predictor=QoSPredictionService(rng=0),
                policy=GreedyReoptimizePolicy(),
                oracle=TensorQoSOracle(oracle_data, rng=0),
            )

    def test_invalid_run_parameters(self, oracle_data):
        engine = build_engine(oracle_data)
        with pytest.raises(ValueError):
            engine.run(start=0.0, interval=0.0, count=1)
        with pytest.raises(ValueError):
            engine.run(start=0.0, interval=1.0, count=-1)

    def test_adaptation_reduces_response_time_end_to_end(self, oracle_data):
        """The paper's premise: prediction-driven adaptation beats static
        binding when the initial binding is poor."""
        # Find the worst service for user 0 in slice 0 and bind to it.
        worst = int(np.argmax(oracle_data.tensor[0, 0, :]))
        registry = ServiceRegistry()
        for sid in range(12):
            registry.register(sid, "t")
        workflow = Workflow(name="w", tasks=[AbstractTask("A", "t")])
        workflow.bind("A", worst)
        predictor = QoSPredictionService(AMFConfig.for_response_time(), rng=0)
        sla = SLA(attribute="rt", threshold=float(np.median(oracle_data.tensor)))
        engine = ExecutionEngine(
            user_id=0,
            workflow=workflow,
            registry=registry,
            predictor=predictor,
            policy=ThresholdPolicy(sla, window=2, min_violations=2, improvement_margin=0.0),
            oracle=TensorQoSOracle(oracle_data, noise_sigma=0.0, rng=0),
            sla=sla,
        )
        # Teach the predictor about the candidates from other users first.
        rng = np.random.default_rng(0)
        oracle = TensorQoSOracle(oracle_data, noise_sigma=0.0, rng=1)
        for __ in range(800):
            u = int(rng.integers(1, 6))
            s = int(rng.integers(0, 12))
            predictor.report_observation(u, s, oracle.value(u, s, 0.0), 0.0)
        stats = engine.run(start=0.0, interval=30.0, count=30)
        assert stats.adaptations >= 1
        first_exec = stats.per_execution_times[0]
        late_mean = np.mean(stats.per_execution_times[-10:])
        assert late_mean < first_exec
