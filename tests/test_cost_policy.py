"""Tests for the cost-aware adaptation policy."""

import pytest

from repro.adaptation import (
    SLA,
    AbstractTask,
    CostAwarePolicy,
    QoSPredictionService,
    ServiceRegistry,
    Workflow,
)
from repro.core import AMFConfig


@pytest.fixture
def world():
    """Service 1 is fast, 2 is equally fast but expensive, 0 is slow/free."""
    registry = ServiceRegistry()
    for sid in range(3):
        registry.register(sid, "t")
    workflow = Workflow(name="w", tasks=[AbstractTask("A", "t")])
    workflow.bind("A", 0)
    predictor = QoSPredictionService(AMFConfig.for_response_time(), rng=0)
    for k in range(200):
        predictor.report_observation(0, 0, 6.0, timestamp=float(k))
        predictor.report_observation(0, 1, 0.5, timestamp=float(k))
        predictor.report_observation(0, 2, 0.4, timestamp=float(k))
    return registry, workflow, predictor


def violate_twice(policy, workflow, registry, predictor):
    first = policy.on_observation(0, workflow, "A", 9.0, 0.0, registry, predictor)
    second = policy.on_observation(0, workflow, "A", 9.0, 1.0, registry, predictor)
    return first or second


class TestCostAwarePolicy:
    def test_prefers_cheap_equivalent(self, world):
        registry, workflow, predictor = world
        policy = CostAwarePolicy(
            SLA(attribute="rt", threshold=2.0),
            prices={2: 10.0},  # service 2 marginally faster but pricey
            cost_weight=0.5,
        )
        action = violate_twice(policy, workflow, registry, predictor)
        assert action is not None
        assert action.new_service_id == 1  # free and nearly as fast

    def test_zero_cost_weight_ignores_prices(self, world):
        registry, workflow, predictor = world
        policy = CostAwarePolicy(
            SLA(attribute="rt", threshold=2.0),
            prices={2: 1000.0},
            cost_weight=0.0,
        )
        action = violate_twice(policy, workflow, registry, predictor)
        assert action is not None
        assert action.new_service_id == 2  # raw predicted QoS wins

    def test_spend_tracked(self, world):
        registry, workflow, predictor = world
        # Service 2 is priced out of contention, so the slightly slower but
        # affordable service 1 wins and its price is committed.
        policy = CostAwarePolicy(
            SLA(attribute="rt", threshold=2.0),
            prices={1: 3.0, 2: 50.0},
            cost_weight=0.1,
        )
        action = violate_twice(policy, workflow, registry, predictor)
        assert action is not None and action.new_service_id == 1
        assert policy.spend_committed == pytest.approx(3.0)

    def test_no_action_when_nothing_scores_better(self, world):
        registry, workflow, predictor = world
        # Every alternative is priced out of contention.
        policy = CostAwarePolicy(
            SLA(attribute="rt", threshold=2.0),
            prices={1: 100.0, 2: 100.0},
            cost_weight=1.0,
        )
        assert violate_twice(policy, workflow, registry, predictor) is None

    def test_debounce_inherited(self, world):
        registry, workflow, predictor = world
        policy = CostAwarePolicy(SLA(attribute="rt", threshold=2.0))
        # A single spike is not a sustained violation.
        assert (
            policy.on_observation(0, workflow, "A", 9.0, 0.0, registry, predictor)
            is None
        )

    def test_negative_cost_weight_rejected(self):
        with pytest.raises(ValueError):
            CostAwarePolicy(SLA(attribute="rt", threshold=2.0), cost_weight=-1.0)
