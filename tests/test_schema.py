"""Tests for repro.datasets.schema: QoSRecord, QoSMatrix, TimeSlicedQoS."""

import numpy as np
import pytest

from repro.datasets.schema import QoSMatrix, QoSRecord, TimeSlicedQoS


class TestQoSRecord:
    def test_fields(self):
        record = QoSRecord(timestamp=1.5, user_id=2, service_id=3, value=0.7, slice_id=1)
        assert (record.user_id, record.service_id) == (2, 3)
        assert record.value == 0.7

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            QoSRecord(timestamp=0, user_id=-1, service_id=0, value=1.0)
        with pytest.raises(ValueError, match="non-negative"):
            QoSRecord(timestamp=0, user_id=0, service_id=-2, value=1.0)

    def test_non_finite_value_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            QoSRecord(timestamp=0, user_id=0, service_id=0, value=float("nan"))

    def test_default_slice_id(self):
        assert QoSRecord(timestamp=0, user_id=0, service_id=0, value=1.0).slice_id == -1

    def test_frozen(self):
        record = QoSRecord(timestamp=0, user_id=0, service_id=0, value=1.0)
        with pytest.raises(AttributeError):
            record.value = 2.0


class TestQoSMatrix:
    def test_density(self, paper_example_matrix):
        assert paper_example_matrix.density == pytest.approx(12 / 20)

    def test_observed_values_count(self, paper_example_matrix):
        assert paper_example_matrix.observed_values().size == 12

    def test_observed_indices_align_with_mask(self, paper_example_matrix):
        rows, cols = paper_example_matrix.observed_indices()
        assert np.all(paper_example_matrix.mask[rows, cols])
        assert rows.size == paper_example_matrix.mask.sum()

    def test_dense_constructor(self):
        matrix = QoSMatrix.dense(np.ones((3, 4)))
        assert matrix.density == 1.0
        assert matrix.shape == (3, 4)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same shape"):
            QoSMatrix(values=np.ones((2, 2)), mask=np.ones((2, 3), dtype=bool))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            QoSMatrix(values=np.ones(4), mask=np.ones(4, dtype=bool))

    def test_records_roundtrip(self, paper_example_matrix):
        records = paper_example_matrix.records(timestamp=5.0, slice_id=2)
        assert len(records) == 12
        assert all(r.timestamp == 5.0 and r.slice_id == 2 for r in records)
        first = records[0]
        assert paper_example_matrix.values[first.user_id, first.service_id] == first.value

    def test_copy_is_independent(self, paper_example_matrix):
        clone = paper_example_matrix.copy()
        clone.values[0, 0] = 99.0
        clone.mask[0, 0] = False
        assert paper_example_matrix.values[0, 0] == 1.4
        assert paper_example_matrix.mask[0, 0]

    def test_filled_uses_fill_value(self, paper_example_matrix):
        dense = paper_example_matrix.filled(fill_value=-7.0)
        assert dense[0, 1] == -7.0  # unobserved
        assert dense[0, 0] == 1.4  # observed

    def test_empty_matrix_density_zero(self):
        matrix = QoSMatrix(values=np.zeros((0, 0)), mask=np.zeros((0, 0), dtype=bool))
        assert matrix.density == 0.0


class TestTimeSlicedQoS:
    def _make(self, n_slices=3, n_users=4, n_services=5) -> TimeSlicedQoS:
        rng = np.random.default_rng(0)
        tensor = rng.uniform(0.1, 5.0, size=(n_slices, n_users, n_services))
        mask = rng.random(tensor.shape) > 0.2
        return TimeSlicedQoS(tensor=tensor, mask=mask)

    def test_dimensions(self):
        data = self._make()
        assert (data.n_slices, data.n_users, data.n_services) == (3, 4, 5)

    def test_slice_returns_copy(self):
        data = self._make()
        matrix = data.slice(1)
        matrix.values[0, 0] = 99.0
        assert data.tensor[1, 0, 0] != 99.0

    def test_slice_bounds_checked(self):
        data = self._make()
        with pytest.raises(IndexError):
            data.slice(3)
        with pytest.raises(IndexError):
            data.slice(-1)

    def test_statistics_keys_and_values(self):
        data = self._make()
        stats = data.statistics()
        assert stats["n_users"] == 4
        observed = data.tensor[data.mask]
        assert stats["mean"] == pytest.approx(observed.mean())
        assert stats["max"] == pytest.approx(observed.max())

    def test_observed_values_respects_mask(self):
        data = self._make()
        assert data.observed_values().size == int(data.mask.sum())

    def test_non_3d_rejected(self):
        with pytest.raises(ValueError, match="3-D"):
            TimeSlicedQoS(tensor=np.ones((2, 2)), mask=np.ones((2, 2), dtype=bool))

    def test_bad_value_range_rejected(self):
        with pytest.raises(ValueError, match="value_max"):
            TimeSlicedQoS(
                tensor=np.ones((1, 2, 2)),
                mask=np.ones((1, 2, 2), dtype=bool),
                value_min=5.0,
                value_max=1.0,
            )

    def test_bad_slice_seconds_rejected(self):
        with pytest.raises(ValueError, match="slice_seconds"):
            TimeSlicedQoS(
                tensor=np.ones((1, 2, 2)),
                mask=np.ones((1, 2, 2), dtype=bool),
                slice_seconds=0.0,
            )
