"""Tests for crash-safe live entity migration: the shard-level
export/import/delete substrate (idempotent, WAL-durable, byte-exact),
the coordinator's drain protocol behind the router, the router's
commit-window read blocking and on-disk placement/journal persistence,
and the operator CLI (``python -m repro.cluster.placement``)."""

import json

import pytest

from repro.cluster import (
    ClusterClient,
    ClusterRouter,
    PlacementTable,
    ShardSpec,
)
from repro.cluster import placement as placement_cli
from repro.server import (
    PredictionClient,
    PredictionServer,
    RetryableServiceError,
    TerminalServiceError,
)

TIERED_ARGS = dict(
    rng=0, background_replay=False, binary_port=None, lifecycle=True
)


def tiered_server(data_dir, **overrides):
    args = dict(TIERED_ARGS)
    args.update(overrides)
    server = PredictionServer(data_dir=str(data_dir), **args)
    server.start()
    return server


def seed_entities(client, user_id=1, services=(1, 2)):
    for step, service_id in enumerate(services):
        client.report_observation(user_id, service_id, 0.4 + 0.1 * step, float(step))


@pytest.fixture()
def shard_pair(tmp_path):
    source = tiered_server(tmp_path / "source")
    dest = tiered_server(tmp_path / "dest", rng=1)
    source_client = PredictionClient(source.address, retries=0)
    dest_client = PredictionClient(dest.address, retries=0)
    try:
        yield source, dest, source_client, dest_client
    finally:
        source_client.close()
        dest_client.close()
        source.stop()
        dest.stop()


class TestMigrationEndpoints:
    ENTITIES = [["user", 1], ["service", 1], ["service", 2]]

    def _export(self, client):
        return client._request(
            "POST", "/migration/export", {"entities": self.ENTITIES}
        )["entities"]

    def test_export_import_round_trip_is_byte_exact(self, shard_pair):
        source, dest, source_client, dest_client = shard_pair
        seed_entities(source_client)
        inventory = source_client._request("GET", "/migration/entities")
        assert 1 in inventory["users"]
        assert set(inventory["services"]) >= {1, 2}

        exported = self._export(source_client)
        assert [[kind, ext] for kind, ext, _ in exported] == self.ENTITIES
        body = dest_client._request(
            "POST",
            "/migration/import",
            {"mid": "m1", "seq": 1, "entities": exported},
        )
        assert body == {"applied": True, "imported": 3}
        # Content fingerprints agree entity-by-entity across the shards...
        probes = [
            client._request(
                "POST", "/migration/probe", {"entities": self.ENTITIES}
            )["entities"]
            for client in (source_client, dest_client)
        ]
        assert probes[0] == probes[1] and len(probes[0]) == 3
        # ... and so do the canonical payload bytes and the prediction.
        assert self._export(dest_client) == exported
        assert dest_client.predict(1, 1) == source_client.predict(1, 1)

    def test_duplicate_import_is_acknowledged_not_reapplied(self, shard_pair):
        source, dest, source_client, dest_client = shard_pair
        seed_entities(source_client)
        exported = self._export(source_client)
        payload = {"mid": "m1", "seq": 1, "entities": exported}
        assert dest_client._request("POST", "/migration/import", payload)["applied"]
        replay = dest_client._request("POST", "/migration/import", payload)
        assert replay == {"applied": False, "imported": 0, "reason": "duplicate"}
        with pytest.raises(TerminalServiceError) as excinfo:
            dest_client._request(
                "POST", "/migration/import", {**payload, "seq": 0}
            )
        assert excinfo.value.status == 400

    def test_delete_logs_only_present_entities(self, shard_pair):
        source, dest, source_client, dest_client = shard_pair
        seed_entities(source_client)
        body = source_client._request(
            "POST", "/migration/delete", {"entities": self.ENTITIES}
        )
        assert body == {"removed": 3}
        # Retry against the already-cleaned source: no-op, no WAL event.
        assert source_client._request(
            "POST", "/migration/delete", {"entities": self.ENTITIES}
        ) == {"removed": 0}
        assert self._export(source_client) == []

    def test_recovery_replays_imports_and_deletes(self, tmp_path, shard_pair):
        source, dest, source_client, dest_client = shard_pair
        seed_entities(source_client)
        exported = self._export(source_client)
        dest_client._request(
            "POST",
            "/migration/import",
            {"mid": "m1", "seq": 1, "entities": exported},
        )
        prediction = dest_client.predict(1, 1)
        dest_client.close()
        dest.kill()  # no final checkpoint: recovery must replay the WAL
        revived = tiered_server(tmp_path / "dest", rng=1)
        try:
            with PredictionClient(revived.address, retries=0) as client:
                assert self._export(client) == exported
                assert client.predict(1, 1) == prediction
                # The dedup ledger survived recovery too.
                replay = client._request(
                    "POST",
                    "/migration/import",
                    {"mid": "m1", "seq": 1, "entities": exported},
                )
                assert replay["reason"] == "duplicate"
        finally:
            revived.stop()


@pytest.fixture()
def migration_fleet(tmp_path):
    """Two tiered shards behind a journaled router, plus a client."""
    servers = {
        name: tiered_server(tmp_path / name, rng=index)
        for index, name in enumerate(("s0", "s1"))
    }
    table = PlacementTable(
        [
            ShardSpec(name=name, addresses=(server.address,))
            for name, server in servers.items()
        ]
    )
    router = ClusterRouter(table, data_dir=str(tmp_path / "router"))
    router.start()
    client = PredictionClient(router.address, retries=0)
    try:
        yield servers, table, router, client
    finally:
        client.close()
        router.stop()
        for server in servers.values():
            server.stop()


def feed_disjoint(client, table, per_user=3, users=8):
    """Disjoint per-user service sets; returns the (user, service) pairs."""
    pairs = []
    tick = 0.0
    for user_id in range(users):
        for service_id in range(user_id * per_user, (user_id + 1) * per_user):
            tick += 1.0
            client.report_observation(
                user_id, service_id, 0.2 + 0.01 * service_id, tick
            )
            pairs.append((user_id, service_id))
    return pairs


class TestRouterMigration:
    def test_blocked_entity_reads_degrade_to_structured_503(
        self, migration_fleet
    ):
        servers, table, router, client = migration_fleet
        client.report_observation(5, 7, 0.5, 1.0)
        router._block_entities([("user", 5)], reads=False)
        try:
            # Write-blocked: observations bounce, reads still serve.
            with pytest.raises(RetryableServiceError) as excinfo:
                client.report_observation(5, 7, 0.6, 2.0)
            assert excinfo.value.status == 503
            assert excinfo.value.body["code"] == "entity_migrating"
            assert excinfo.value.retry_after > 0
            assert client.predict(5, 7) > 0.0
            router._block_entities([("user", 5)], reads=True)
            with pytest.raises(RetryableServiceError) as excinfo:
                client.predict(5, 7)
            assert excinfo.value.body["code"] == "entity_migrating"
        finally:
            router._unblock_entities([("user", 5)])
        assert client.predict(5, 7) > 0.0

    def test_live_drain_rehomes_state_bit_exactly(self, migration_fleet):
        servers, table, router, client = migration_fleet
        pairs = feed_disjoint(client, table)
        before = {pair: client.predict(*pair) for pair in pairs}

        target = table.draining_shard("s0")
        coordinator = router.start_migration(target, batch_entities=4)
        coordinator.join(timeout=60.0)
        assert not coordinator.active and coordinator.error is None
        assert coordinator.result["entities_moved"] > 0
        assert router.placement.version == target.version

        counts = {
            name: server.model.with_model(
                lambda m: (len(m.entity_ids("user")), len(m.entity_ids("service")))
            )
            for name, server in servers.items()
        }
        assert counts["s0"] == (0, 0)
        assert counts["s1"] == (8, 24)
        assert {pair: client.predict(*pair) for pair in pairs} == before

        status = json.loads(
            json.dumps(client._request("GET", "/migration/status"))
        )
        assert status["active"] is False
        assert status["last"]["mid"] == coordinator.mid

    def test_placement_updates_are_refused_mid_migration(
        self, migration_fleet
    ):
        servers, table, router, client = migration_fleet
        feed_disjoint(client, table)
        blocker = router.start_migration(
            table.draining_shard("s0"), batch_entities=1
        )
        cluster = ClusterClient(router.address, retries=0)
        try:
            if router.migration is blocker and blocker.active:
                with pytest.raises(TerminalServiceError) as excinfo:
                    cluster.update_placement(table.draining_shard("s1"))
                assert excinfo.value.body["code"] == "migration_active"
        finally:
            cluster.close()
            blocker.join(timeout=60.0)
        assert not blocker.active and blocker.error is None

    def test_placement_survives_router_restart(self, tmp_path):
        server = tiered_server(tmp_path / "solo")
        table = PlacementTable(
            [
                ShardSpec(name="solo", addresses=(server.address,)),
                ShardSpec(name="ghost", addresses=(("127.0.0.1", 1),)),
            ]
        )
        data_dir = str(tmp_path / "router")
        router = ClusterRouter(table, data_dir=data_dir)
        router.start()
        try:
            with ClusterClient(router.address, retries=0) as cluster:
                cluster.update_placement(table.draining_shard("ghost"))
        finally:
            router.stop()
        # A successor booted with the *stale* table prefers the newer
        # persisted one (atomic temp-rename file in its data dir).
        successor = ClusterRouter(table, data_dir=data_dir)
        try:
            assert successor.placement.version == table.version + 1
            assert successor.placement.shard("ghost").draining
        finally:
            successor.stop()
            server.stop()


class TestPlacementCli:
    def run_cli(self, router, *argv):
        host, port = router.address
        return placement_cli.main(["--router", f"{host}:{port}", *argv])

    def test_show_prints_table_and_migration_status(
        self, migration_fleet, capsys
    ):
        servers, table, router, client = migration_fleet
        assert self.run_cli(router, "show") == 0
        body = json.loads(capsys.readouterr().out)
        assert body["placement"]["version"] == table.version
        assert body["migration"]["active"] is False

    def test_drain_undrain_round_trip(self, migration_fleet, capsys):
        servers, table, router, client = migration_fleet
        assert self.run_cli(router, "drain", "s1") == 0
        assert router.placement.shard("s1").draining
        assert self.run_cli(router, "undrain", "s1") == 0
        assert not router.placement.shard("s1").draining
        assert router.placement.version == table.version + 2
        capsys.readouterr()

    def test_unknown_shard_and_bad_evolution_fail_cleanly(
        self, migration_fleet, capsys
    ):
        servers, table, router, client = migration_fleet
        assert self.run_cli(router, "drain", "nope") == 1
        assert "no shard named" in capsys.readouterr().err
        assert self.run_cli(router, "add", "s1", "127.0.0.1:9") == 1
        assert "already present" in capsys.readouterr().err
        assert router.placement.version == table.version

    def test_migrate_flag_drains_through_the_coordinator(
        self, migration_fleet, capsys
    ):
        servers, table, router, client = migration_fleet
        feed_disjoint(client, table, per_user=2, users=4)
        assert self.run_cli(router, "--migrate", "drain", "s0") == 0
        body = json.loads(capsys.readouterr().out)
        assert body["migration"]["target_version"] == table.version + 1
        coordinator = router.migration
        if coordinator is not None:
            coordinator.join(timeout=60.0)
        assert router.placement.version == table.version + 1
        counts = servers["s0"].model.with_model(
            lambda m: (len(m.entity_ids("user")), len(m.entity_ids("service")))
        )
        assert counts == (0, 0)
