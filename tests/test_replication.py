"""Tests for primary/standby replication, fenced failover, and the
multi-endpoint client (circuit breaker, fenced-409 redirect, deadlines)."""

import os
import socket
import threading
import time

import numpy as np
import pytest

from repro.datasets.schema import QoSRecord
from repro.server import (
    DeadlineExceeded,
    EpochStore,
    PredictionClient,
    PredictionServer,
    ReplicationConfig,
    RetryableServiceError,
    TerminalServiceError,
)
from repro.server.replication import HttpReplicaLink
from repro.simulation.faults import (
    FaultyReplicaLink,
    LinkFaultConfig,
    run_failover,
)

SERVER_ARGS = dict(rng=0, background_replay=False, checkpoint_interval=20)


def record(k, value=None):
    return QoSRecord(
        timestamp=float(k),
        user_id=k % 6,
        service_id=k % 9,
        value=value if value is not None else 0.3 + (k % 11) * 0.15,
    )


def post(client, records, key_prefix="obs"):
    for k, rec in enumerate(records):
        client.report_observation(
            rec.user_id,
            rec.service_id,
            rec.value,
            rec.timestamp,
            idempotency_key=f"{key_prefix}:{k}",
        )


def wait_until(predicate, timeout=10.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(interval)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def make_pair(tmp_path, standby_kwargs=None, primary_kwargs=None):
    """A running primary + pulling standby around a shared epoch store."""
    store = str(tmp_path / "epoch.json")
    primary = PredictionServer(
        data_dir=str(tmp_path / "primary"),
        replication=ReplicationConfig(store, role="primary", node_id="p"),
        **{**SERVER_ARGS, **(primary_kwargs or {})},
    )
    primary.start()
    standby = PredictionServer(
        data_dir=str(tmp_path / "standby"),
        replication=ReplicationConfig(
            store,
            role="standby",
            primary_address=primary.address,
            node_id="s",
            poll_interval=0.01,
        ),
        **{**SERVER_ARGS, **(standby_kwargs or {})},
    )
    standby.start()
    return primary, standby


class TestEpochStore:
    def test_starts_at_zero(self, tmp_path):
        store = EpochStore(str(tmp_path / "epoch.json"))
        assert store.epoch() == 0
        assert store.read() == {"epoch": 0, "owner": None}

    def test_cas_advances_and_records_owner(self, tmp_path):
        store = EpochStore(str(tmp_path / "epoch.json"))
        assert store.cas(0, 1, owner="alpha")
        assert store.read() == {"epoch": 1, "owner": "alpha"}

    def test_cas_fails_on_wrong_expected(self, tmp_path):
        store = EpochStore(str(tmp_path / "epoch.json"))
        assert store.cas(0, 1)
        assert not store.cas(0, 2)
        assert store.epoch() == 1

    def test_cas_must_advance(self, tmp_path):
        store = EpochStore(str(tmp_path / "epoch.json"))
        with pytest.raises(ValueError):
            store.cas(1, 1)

    def test_racing_cas_has_exactly_one_winner(self, tmp_path):
        path = str(tmp_path / "epoch.json")
        wins = []
        barrier = threading.Barrier(8)

        def racer(name):
            store = EpochStore(path)
            barrier.wait()
            if store.cas(0, 1, owner=name):
                wins.append(name)

        threads = [
            threading.Thread(target=racer, args=(f"n{i}",)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1
        assert EpochStore(path).read()["owner"] == wins[0]


class TestShippingEndpoint:
    def test_ships_committed_records_with_keys(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        try:
            standby._replicator.stop()  # read the wire directly
            post(PredictionClient(primary.address), [record(k) for k in range(5)])
            batch = HttpReplicaLink(primary.address).fetch(after_seq=0, limit=10)
            assert batch["epoch"] == 1
            assert batch["role"] == "primary"
            assert batch["last_seq"] == 5
            assert [entry[0] for entry in batch["records"]] == [1, 2, 3, 4, 5]
            seq, ts, user, service, value, key = batch["records"][2]
            assert (user, service) == (2 % 6, 2 % 9)
            assert key == "obs:2"
        finally:
            primary.stop()
            standby.stop()

    def test_after_seq_and_limit_window_the_batch(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        try:
            standby._replicator.stop()
            post(PredictionClient(primary.address), [record(k) for k in range(8)])
            batch = HttpReplicaLink(primary.address).fetch(after_seq=3, limit=2)
            assert [entry[0] for entry in batch["records"]] == [4, 5]
            assert batch["last_seq"] == 8
        finally:
            primary.stop()
            standby.stop()

    def test_unreplicated_server_reports_not_replicated(self):
        server = PredictionServer(**SERVER_ARGS)
        server.start()
        try:
            status = PredictionClient(server.address).replication_status()
            assert status == {
                "role": "primary",
                "epoch": 0,
                "fenced": False,
                "replicated": False,
            }
        finally:
            server.stop()


class TestStandbyCatchUp:
    def test_standby_replays_to_bit_exact_state(self, tmp_path):
        primary, standby = make_pair(
            tmp_path, standby_kwargs={"gate": True}, primary_kwargs={"gate": True}
        )
        try:
            records = [record(k) for k in range(60)]
            post(PredictionClient(primary.address), records)
            wait_until(lambda: standby.wal_last_seq >= primary.wal_last_seq)
            assert np.array_equal(
                standby.model.user_factors(), primary.model.user_factors()
            )
            assert np.array_equal(
                standby.model.service_factors(), primary.model.service_factors()
            )
            assert standby.model.updates_applied == primary.model.updates_applied
            assert standby.ledger.state_dict() == primary.ledger.state_dict()
            assert standby.gate.state_dict() == primary.gate.state_dict()
            # The standby's windowed accuracy tracked the same stream.
            assert standby.drift.snapshot() == primary.drift.snapshot()
        finally:
            primary.stop()
            standby.stop()

    def test_standby_wal_is_byte_identical_log(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        try:
            post(PredictionClient(primary.address), [record(k) for k in range(30)])
            wait_until(lambda: standby.wal_last_seq >= primary.wal_last_seq)
        finally:
            primary.stop()
            standby.stop()
        primary_dir, standby_dir = tmp_path / "primary", tmp_path / "standby"
        segments = sorted(p.name for p in primary_dir.glob("wal-*.jsonl"))
        assert segments == sorted(p.name for p in standby_dir.glob("wal-*.jsonl"))
        for name in segments:
            assert (primary_dir / name).read_bytes() == (
                standby_dir / name
            ).read_bytes()

    def test_standby_refuses_writes_and_serves_reads(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        try:
            post(PredictionClient(primary.address), [record(k) for k in range(10)])
            wait_until(lambda: standby.wal_last_seq >= 10)
            standby_client = PredictionClient(standby.address, retries=0)
            with pytest.raises(TerminalServiceError) as excinfo:
                standby_client.report_observation(0, 0, 1.0, 100.0)
            assert excinfo.value.status == 409
            assert excinfo.value.body["code"] == "not_primary"
            # Predictions keep serving from the warm replica.
            assert standby_client.predict(0, 0) > 0
        finally:
            primary.stop()
            standby.stop()

    def test_partition_heals_and_lag_recovers(self, tmp_path):
        store = str(tmp_path / "epoch.json")
        primary = PredictionServer(
            data_dir=str(tmp_path / "primary"),
            replication=ReplicationConfig(store, role="primary"),
            **SERVER_ARGS,
        )
        primary.start()
        link = FaultyReplicaLink(
            HttpReplicaLink(primary.address), LinkFaultConfig(partitioned=True)
        )
        standby = PredictionServer(
            data_dir=str(tmp_path / "standby"),
            replication=ReplicationConfig(
                store,
                role="standby",
                primary_address=primary.address,
                poll_interval=0.01,
            ),
            replication_link=link,
            **SERVER_ARGS,
        )
        standby.start()
        try:
            post(PredictionClient(primary.address), [record(k) for k in range(20)])
            assert standby.wal_last_seq == 0  # partitioned: nothing shipped
            assert link.counts["blocked"] > 0
            link.heal()
            wait_until(lambda: standby._replicator.lag_records == 0)
            assert standby.wal_last_seq >= 20
        finally:
            primary.stop()
            standby.stop()


class TestPromotionAndFencing:
    def test_promotion_advances_epoch_and_accepts_writes(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        try:
            post(PredictionClient(primary.address), [record(k) for k in range(15)])
            wait_until(lambda: standby.wal_last_seq >= 15)
            primary.kill()
            assert standby.promote()
            assert standby.role == "primary"
            assert standby.epoch == 2
            client = PredictionClient(standby.address)
            client.report_observation(1, 1, 0.5, 100.0)
            assert standby.wal_last_seq == 16
        finally:
            standby.stop()

    def test_live_deposed_primary_fences_itself(self, tmp_path):
        primary, standby = make_pair(
            tmp_path,
            primary_kwargs={},
        )
        primary.replication.fence_check_interval = 0.01
        try:
            post(PredictionClient(primary.address), [record(k) for k in range(5)])
            wait_until(lambda: standby.wal_last_seq >= 5)
            assert standby.promote()
            time.sleep(0.02)  # let the fence-check interval elapse
            with pytest.raises(TerminalServiceError) as excinfo:
                PredictionClient(primary.address, retries=0).report_observation(
                    0, 0, 1.0, 200.0
                )
            assert excinfo.value.status == 409
            assert excinfo.value.body["code"] == "stale_epoch"
            assert excinfo.value.body["cluster_epoch"] == 2
            assert primary.fenced
            # Reads still work on the fenced node.
            assert PredictionClient(primary.address).predict(0, 0) > 0
        finally:
            primary.stop()
            standby.stop()

    def test_promotion_lost_cas_stays_standby(self, tmp_path):
        class VetoStore(EpochStore):
            def cas(self, expected, new, owner=None):
                if new <= expected:
                    raise ValueError("epoch must advance")
                return False  # a sibling always wins

        store = VetoStore(str(tmp_path / "epoch.json"))
        primary = PredictionServer(
            data_dir=str(tmp_path / "primary"),
            replication=ReplicationConfig(
                str(tmp_path / "epoch.json"), role="primary"
            ),
            **SERVER_ARGS,
        )
        primary.start()
        standby = PredictionServer(
            data_dir=str(tmp_path / "standby"),
            replication=ReplicationConfig(
                store,
                role="standby",
                primary_address=primary.address,
                poll_interval=0.01,
            ),
            **SERVER_ARGS,
        )
        standby.start()
        try:
            assert not standby.promote()
            assert standby.role == "standby"
            assert standby._replicator.running  # went back to pulling
        finally:
            primary.stop()
            standby.stop()

    def test_restarted_deposed_primary_starts_fenced(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        post(PredictionClient(primary.address), [record(k) for k in range(25)])
        wait_until(lambda: standby.wal_last_seq >= 25)
        primary.kill()
        assert standby.promote()
        revived = PredictionServer(
            data_dir=str(tmp_path / "primary"),
            replication=ReplicationConfig(str(tmp_path / "epoch.json")),
            **SERVER_ARGS,
        )
        revived.start()
        try:
            assert revived.fenced
            with pytest.raises(TerminalServiceError) as excinfo:
                PredictionClient(revived.address, retries=0).report_observation(
                    0, 0, 1.0, 300.0
                )
            assert excinfo.value.body["code"] == "stale_epoch"
        finally:
            revived.kill()
            standby.stop()


class TestClientFailover:
    def test_reads_fail_over_to_surviving_replica(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        try:
            post(PredictionClient(primary.address), [record(k) for k in range(10)])
            wait_until(lambda: standby.wal_last_seq >= 10)
            client = PredictionClient(
                [primary.address, standby.address], retries=2, backoff=0.01
            )
            assert client.predict(0, 0) > 0  # served by the primary
            primary.kill()
            assert client.predict(0, 0) > 0  # transparently fails over
            assert client.failovers_performed >= 1
        finally:
            standby.stop()

    def test_write_redirects_off_standby_without_key(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        try:
            # Standby listed first: the keyless write hits 409 not_primary
            # and must be re-routed (safe — the 409 applied nothing).
            client = PredictionClient(
                [standby.address, primary.address], retries=0
            )
            client.report_observation(0, 0, 1.0, 1.0)
            assert primary.wal_last_seq == 1
            assert standby.epoch >= 0  # standby untouched by the write
        finally:
            primary.stop()
            standby.stop()

    def test_single_endpoint_fenced_write_raises(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        try:
            with pytest.raises(TerminalServiceError) as excinfo:
                PredictionClient(standby.address, retries=0).report_observation(
                    0, 0, 1.0, 1.0
                )
            assert excinfo.value.body["code"] == "not_primary"
        finally:
            primary.stop()
            standby.stop()

    def test_breaker_remembers_dead_endpoint(self, tmp_path):
        primary, standby = make_pair(tmp_path)
        try:
            post(PredictionClient(primary.address), [record(k) for k in range(5)])
            wait_until(lambda: standby.wal_last_seq >= 5)
            client = PredictionClient(
                [primary.address, standby.address],
                retries=2,
                backoff=0.01,
                breaker_threshold=1,
                breaker_cooldown=30.0,
            )
            primary.kill()
            client.predict(0, 0)
            failovers_after_first = client.failovers_performed
            # The open breaker routes subsequent reads straight to the
            # standby — no more failover hops, no re-probing the corpse.
            for __ in range(3):
                client.predict(0, 0)
            assert client.failovers_performed == failovers_after_first
        finally:
            standby.stop()


class TestDeadline:
    def test_deadline_exceeded_is_raised_instead_of_sleeping(self):
        client = PredictionClient(
            ("127.0.0.1", free_port()),
            retries=10,
            backoff=5.0,
            backoff_max=10.0,
            jitter=0.0,
            deadline=0.3,
        )
        started = time.monotonic()
        with pytest.raises(DeadlineExceeded) as excinfo:
            client.predict(0, 0)
        assert time.monotonic() - started < 2.0
        assert isinstance(excinfo.value.__cause__, RetryableServiceError)

    def test_per_call_deadline_overrides_constructor(self):
        server = PredictionServer(**SERVER_ARGS)
        server.start()
        try:
            client = PredictionClient(server.address, deadline=0.001)
            # The write-path override gets a workable budget even though the
            # constructor default is hopeless.
            client.report_observation(0, 0, 1.0, 1.0, deadline=10.0)
        finally:
            server.stop()

    def test_deadline_validation(self):
        with pytest.raises(ValueError):
            PredictionClient(("127.0.0.1", 1), deadline=0.0)

    def test_without_deadline_retries_are_bounded_by_count(self):
        client = PredictionClient(
            ("127.0.0.1", free_port()), retries=1, backoff=0.01
        )
        with pytest.raises(RetryableServiceError):
            client.predict(0, 0)
        assert client.retries_performed == 1


class TestFailoverDrill:
    def test_run_failover_smoke(self, tmp_path):
        records = [record(k) for k in range(48)]
        report = run_failover(
            records,
            kill_after=30,
            primary_dir=str(tmp_path / "primary"),
            standby_dir=str(tmp_path / "standby"),
            baseline_dir=str(tmp_path / "baseline"),
            epoch_store=str(tmp_path / "epoch.json"),
            rng=0,
            checkpoint_interval=10,
            server_kwargs={"gate": True},
            auto_promote_after=0.15,
        )
        assert report.matches, report.summary()
        assert report.metrics_ok, report.detail["metrics"]
        # The silence timer is armed from the standby's last successful
        # fetch, which may precede the kill by up to one poll interval —
        # allow that much undercount; the floor still proves the standby
        # waited out auto_promote_after instead of promoting instantly.
        assert report.time_to_promote >= 0.15 - 0.02
        assert report.detail["promoted_epoch"] == 2
        assert report.detail["fence_probe"]["code"] == "stale_epoch"
        digests = report.detail["checkpoint_digests"]
        assert digests["promoted"] == digests["baseline"]
