"""Tests for the PMF baseline (batch matrix factorization, Eq. 5)."""

import numpy as np
import pytest

from repro.baselines import PMF, PMFConfig
from repro.datasets import train_test_split_matrix
from repro.datasets.schema import QoSMatrix
from repro.metrics import mae, mre


class TestConfig:
    def test_defaults(self):
        config = PMFConfig()
        assert config.rank == 10
        assert config.value_max == 20.0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("rank", 0),
            ("learning_rate", 0.0),
            ("regularization", -0.1),
            ("momentum", 1.5),
            ("max_iters", 0),
            ("tolerance", 0.0),
            ("init_scale", 0.0),
        ],
    )
    def test_invalid_fields(self, field, value):
        with pytest.raises(ValueError):
            PMFConfig(**{field: value})

    def test_inverted_range(self):
        with pytest.raises(ValueError, match="value_max"):
            PMFConfig(value_min=5.0, value_max=1.0)


class TestTraining:
    def test_loss_decreases(self, rank_one_matrix):
        config = PMFConfig(value_min=0.0, value_max=5.0, max_iters=100)
        model = PMF(config, rng=0).fit(rank_one_matrix)
        trace = model.loss_trace
        assert trace[-1] < trace[0]

    def test_loss_monotone_after_backoff(self, rank_one_matrix):
        """The back-off guard keeps the trace from exploding."""
        config = PMFConfig(value_min=0.0, value_max=5.0, learning_rate=50.0, max_iters=60)
        model = PMF(config, rng=0).fit(rank_one_matrix)
        trace = np.array(model.loss_trace)
        assert np.all(np.isfinite(trace))
        assert trace[-1] <= trace[0]

    def test_early_stop_on_convergence(self, rank_one_matrix):
        config = PMFConfig(value_min=0.0, value_max=5.0, tolerance=0.05, max_iters=500)
        model = PMF(config, rng=0).fit(rank_one_matrix)
        assert model.iterations_run < 500

    def test_fits_rank_one(self, rank_one_matrix):
        config = PMFConfig(value_min=0.0, value_max=5.0, max_iters=400)
        train, test = train_test_split_matrix(rank_one_matrix, 0.5, rng=0)
        model = PMF(config, rng=0).fit(train)
        rows, cols = test.observed_indices()
        assert mae(model.predict_entries(rows, cols), test.values[rows, cols]) < 0.25

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PMF().predict_matrix()

    def test_empty_rejected(self):
        empty = QoSMatrix(values=np.zeros((3, 3)), mask=np.zeros((3, 3), dtype=bool))
        with pytest.raises(ValueError, match="empty"):
            PMF().fit(empty)

    def test_deterministic_given_seed(self, rank_one_matrix):
        config = PMFConfig(value_min=0.0, value_max=5.0, max_iters=30)
        a = PMF(config, rng=7).fit(rank_one_matrix).predict_matrix()
        b = PMF(config, rng=7).fit(rank_one_matrix).predict_matrix()
        np.testing.assert_array_equal(a, b)


class TestPredictions:
    def test_within_value_range(self, small_dataset):
        matrix = small_dataset.slice(0)
        train, __ = train_test_split_matrix(matrix, 0.3, rng=0)
        model = PMF(PMFConfig(), rng=0).fit(train)
        predictions = model.predict_matrix()
        assert predictions.min() >= 0.0
        assert predictions.max() <= 20.0

    def test_beats_global_mean_on_twin(self, small_dataset):
        matrix = small_dataset.slice(0)
        train, test = train_test_split_matrix(matrix, 0.3, rng=1)
        model = PMF(PMFConfig(), rng=1).fit(train)
        rows, cols = test.observed_indices()
        actual = test.values[rows, cols]
        pmf_mae = mae(model.predict_entries(rows, cols), actual)
        mean_mae = mae(np.full(actual.shape, train.observed_values().mean()), actual)
        assert pmf_mae < mean_mae

    def test_amf_beats_pmf_on_relative_error(self, small_dataset):
        """The paper's headline comparison, at test scale."""
        from repro.core import AdaptiveMatrixFactorization, AMFConfig, StreamTrainer
        from repro.datasets.stream import stream_from_matrix

        matrix = small_dataset.slice(0)
        train, test = train_test_split_matrix(matrix, 0.3, rng=2)
        rows, cols = test.observed_indices()
        actual = test.values[rows, cols]

        pmf = PMF(PMFConfig(), rng=2).fit(train)
        pmf_mre = mre(pmf.predict_entries(rows, cols), actual)

        amf = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=2)
        amf.ensure_user(matrix.n_users - 1)
        amf.ensure_service(matrix.n_services - 1)
        StreamTrainer(amf).process(stream_from_matrix(train, rng=2))
        amf_mre = mre(amf.predict_matrix()[rows, cols], actual)
        assert amf_mre < pmf_mre
