"""Smoke tests: the example scripts must run end to end.

Each example is executed in-process (import + ``main()``) with stdout
captured; the fast ones run as-is, the slower simulation examples are
exercised through their building blocks elsewhere (test_engine,
test_integration) and only import-checked here.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesImport:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "online_stream",
            "runtime_adaptation",
            "churn_scalability",
            "workflow_composition",
            "persistence_and_replay",
            "prediction_service",
        ],
    )
    def test_importable_with_main(self, name):
        module = load_example(name)
        assert callable(module.main)


class TestFastExamplesRun:
    def test_quickstart_output(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "held-out accuracy" in out
        assert "MRE=" in out

    def test_persistence_and_replay_output(self, capsys):
        load_example("persistence_and_replay").main()
        out = capsys.readouterr().out
        assert "predictions identical: True" in out
        assert "trace replay reproduces training: True" in out
