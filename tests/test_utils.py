"""Tests for repro.utils: RNG management, validation, table rendering."""

import numpy as np
import pytest

from repro.utils.rng import spawn_children, spawn_rng
from repro.utils.tables import render_series, render_table
from repro.utils.validation import (
    check_fraction,
    check_nonnegative_int,
    check_positive,
    check_probability,
    check_shape_match,
)


class TestSpawnRng:
    def test_int_seed_is_deterministic(self):
        a = spawn_rng(42).random(5)
        b = spawn_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(spawn_rng(1).random(5), spawn_rng(2).random(5))

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert spawn_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(spawn_rng(None), np.random.Generator)

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(spawn_rng(seq), np.random.Generator)


class TestSpawnChildren:
    def test_children_count(self):
        assert len(spawn_children(0, 5)) == 5

    def test_children_are_independent(self):
        a, b = spawn_children(0, 2)
        assert not np.allclose(a.random(10), b.random(10))

    def test_reproducible_across_calls(self):
        first = [g.random(3) for g in spawn_children(9, 3)]
        second = [g.random(3) for g in spawn_children(9, 3)]
        for x, y in zip(first, second):
            np.testing.assert_array_equal(x, y)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_children(0, -1)

    def test_zero_children(self):
        assert spawn_children(0, 0) == []


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 0.5) == 0.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", bad)

    def test_check_fraction_accepts_one(self):
        assert check_fraction("d", 1.0) == 1.0

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.1, float("nan")])
    def test_check_fraction_rejects(self, bad):
        with pytest.raises(ValueError):
            check_fraction("d", bad)

    def test_check_probability_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability("p", 1.01)

    def test_check_shape_match(self):
        check_shape_match("a", np.zeros((2, 3)), "b", np.ones((2, 3)))
        with pytest.raises(ValueError, match="same shape"):
            check_shape_match("a", np.zeros((2, 3)), "b", np.ones((3, 2)))

    def test_check_nonnegative_int(self):
        assert check_nonnegative_int("n", 3) == 3
        assert check_nonnegative_int("n", 0) == 0
        with pytest.raises(ValueError):
            check_nonnegative_int("n", -1)
        with pytest.raises(ValueError):
            check_nonnegative_int("n", 2.5)


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.500" in out and "3.250" in out

    def test_title_prepended(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_precision_respected(self):
        out = render_table(["x"], [[1.23456]], precision=1)
        assert "1.2" in out and "1.23" not in out

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError, match="headers"):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out

    def test_strings_pass_through(self):
        out = render_table(["name"], [["UPCC"]])
        assert "UPCC" in out


class TestRenderSeries:
    def test_series_layout(self):
        out = render_series("y", [0, 1], [1.5, 2.5])
        assert "1.500" in out and "2.500" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="x-values"):
            render_series("y", [0, 1], [1.0])
