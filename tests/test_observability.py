"""Tests for repro.observability: registry primitives, Prometheus
rendering/parsing, timing helpers, and the stream-accuracy drift monitor."""

import math
import threading

import numpy as np
import pytest

from repro.metrics.errors import mae, mre, npre
from repro.observability import (
    MetricsRegistry,
    StreamAccuracyMonitor,
    get_registry,
    is_enabled,
    parse_prometheus_text,
    set_enabled,
    time_block,
    timed,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        counter = registry.counter("c_total", "help")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("c_total")
        with pytest.raises(ValueError, match=">= 0"):
            counter.inc(-1.0)

    def test_concurrent_increments_are_not_lost(self, registry):
        """8 threads x 1000 increments must land exactly: unprotected
        ``+=`` under free-threading would drop updates."""
        counter = registry.counter("c_total")
        n_threads, n_incs = 8, 1000

        def hammer():
            for __ in range(n_incs):
                counter.inc()

        threads = [threading.Thread(target=hammer) for __ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * n_incs


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("g")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(3.0)
        assert gauge.value == 4.0

    def test_set_function_reads_lazily(self, registry):
        gauge = registry.gauge("g")
        state = {"v": 1.0}
        gauge.set_function(lambda: state["v"])
        assert gauge.value == 1.0
        state["v"] = 7.0
        assert gauge.value == 7.0

    def test_raising_callback_reads_as_nan(self, registry):
        gauge = registry.gauge("g")
        gauge.set_function(lambda: 1 / 0)
        assert math.isnan(gauge.value)


class TestHistogram:
    def test_quantiles_nearest_rank(self, registry):
        hist = registry.histogram("h", quantiles=(0.5, 0.9, 0.99))
        for v in range(1, 101):
            hist.observe(float(v))
        q = hist.quantile_values()
        assert q[0.5] == 50.0
        assert q[0.9] == 90.0
        assert q[0.99] == 99.0
        assert hist.count == 100
        assert hist.sum == pytest.approx(5050.0)

    def test_window_bounds_memory_but_not_totals(self, registry):
        hist = registry.histogram("h", window=10)
        for v in range(100):
            hist.observe(float(v))
        # Quantiles summarize the last 10 observations only...
        assert hist.quantile_values()[0.5] >= 90.0
        # ...while count/sum stay exact over everything observed.
        assert hist.count == 100
        assert hist.sum == pytest.approx(sum(range(100)))

    def test_empty_histogram_quantiles_are_nan(self, registry):
        hist = registry.histogram("h")
        assert all(math.isnan(v) for v in hist.quantile_values().values())

    def test_invalid_parameters_rejected(self, registry):
        with pytest.raises(ValueError, match="window"):
            registry.histogram("h_bad_window", window=0)
        with pytest.raises(ValueError, match="quantiles"):
            registry.histogram("h_bad_q", quantiles=(1.5,))

    def test_time_context_manager_observes_duration(self, registry):
        hist = registry.histogram("h")
        with hist.time():
            pass
        assert hist.count == 1
        assert hist.sum >= 0.0


class TestFamilies:
    def test_labels_create_independent_children(self, registry):
        family = registry.counter("f_total", "help", labelnames=("kind",))
        family.labels(kind="a").inc()
        family.labels(kind="a").inc()
        family.labels(kind="b").inc(5)
        assert family.labels(kind="a").value == 2
        assert family.labels(kind="b").value == 5

    def test_wrong_label_names_rejected(self, registry):
        family = registry.counter("f_total", labelnames=("kind",))
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(other="x")

    def test_get_or_create_returns_same_object(self, registry):
        first = registry.counter("same_total")
        second = registry.counter("same_total")
        assert first is second

    def test_re_registration_with_different_kind_rejected(self, registry):
        registry.counter("clash")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("clash")

    def test_re_registration_with_different_labels_rejected(self, registry):
        registry.counter("clash_total", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("clash_total", labelnames=("b",))

    def test_invalid_metric_name_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("0bad")

    def test_invalid_label_name_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ok_total", labelnames=("0bad",))


class TestRenderAndParse:
    def test_roundtrip(self, registry):
        registry.counter("req_total", "requests", labelnames=("code",)).labels(
            code="200"
        ).inc(3)
        registry.gauge("temp", "temperature").set(21.5)
        hist = registry.histogram("lat_seconds", "latency")
        hist.observe(0.1)
        hist.observe(0.3)
        families = parse_prometheus_text(registry.render())
        assert families["req_total"]["type"] == "counter"
        assert families["req_total"]["samples"][
            ("req_total", (("code", "200"),))
        ] == 3
        assert families["temp"]["samples"][("temp", ())] == 21.5
        assert families["lat_seconds"]["type"] == "summary"
        assert families["lat_seconds"]["samples"][
            ("lat_seconds_count", ())
        ] == 2
        assert families["lat_seconds"]["samples"][
            ("lat_seconds_sum", ())
        ] == pytest.approx(0.4)

    def test_label_values_are_escaped(self, registry):
        registry.counter("esc_total", labelnames=("path",)).labels(
            path='a"b\\c\nd'
        ).inc()
        text = registry.render()
        families = parse_prometheus_text(text)
        (key,) = [
            k for k in families["esc_total"]["samples"] if k[0] == "esc_total"
        ]
        # The parser keeps escape sequences verbatim; the round trip must
        # at least survive strict parsing and preserve one sample.
        assert families["esc_total"]["samples"][key] == 1

    def test_parse_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="no preceding TYPE"):
            parse_prometheus_text("orphan_metric 1\n")

    def test_parse_rejects_malformed_type_line(self):
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_prometheus_text("# TYPE incomplete\n")

    def test_parse_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_prometheus_text("# TYPE m weird\n")

    def test_parse_rejects_duplicate_type(self):
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_prometheus_text("# TYPE m counter\n# TYPE m counter\n")

    def test_parse_rejects_bad_value(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus_text("# TYPE m counter\nm notanumber extra junk\n")

    def test_parse_rejects_malformed_labels(self):
        with pytest.raises(ValueError, match="malformed label set"):
            parse_prometheus_text('# TYPE m counter\nm{a=unquoted} 1\n')

    def test_non_finite_values_render_and_parse(self, registry):
        registry.gauge("g_nan").set(float("nan"))
        registry.gauge("g_inf").set(float("inf"))
        families = parse_prometheus_text(registry.render())
        assert math.isnan(families["g_nan"]["samples"][("g_nan", ())])
        assert math.isinf(families["g_inf"]["samples"][("g_inf", ())])


class TestRegistryLifecycle:
    def test_reset_zeroes_in_place(self, registry):
        counter = registry.counter("c_total")
        hist = registry.histogram("h")
        gauge = registry.gauge("g")
        counter.inc(5)
        hist.observe(1.0)
        gauge.set_function(lambda: 42.0)
        registry.reset()
        assert counter.value == 0.0  # same object, zeroed
        assert hist.count == 0
        assert gauge.value == 0.0  # callback cleared too
        assert registry.counter("c_total") is counter

    def test_default_registry_is_shared(self):
        assert get_registry() is get_registry()

    def test_set_enabled_false_makes_recording_a_no_op(self, registry):
        counter = registry.counter("c_total")
        hist = registry.histogram("h")
        gauge = registry.gauge("g")
        assert is_enabled()
        set_enabled(False)
        try:
            counter.inc()
            hist.observe(1.0)
            gauge.set(9.0)
            assert counter.value == 0.0
            assert hist.count == 0
            assert gauge.value == 0.0
        finally:
            set_enabled(True)
        counter.inc()
        assert counter.value == 1.0


class TestTimingHelpers:
    def test_time_block_observes_and_exposes_elapsed(self, registry):
        hist = registry.histogram("h")
        with time_block(hist) as block:
            pass
        assert hist.count == 1
        assert block.elapsed >= 0.0

    def test_timed_decorator(self, registry):
        hist = registry.histogram("h")

        @timed(hist)
        def work(x):
            return x * 2

        assert work(21) == 42
        assert hist.count == 1


class TestStreamAccuracyMonitor:
    def test_matches_reference_error_metrics(self):
        """The inlined windowed formulas must agree with repro.metrics."""
        rng = np.random.default_rng(0)
        actual = rng.uniform(0.1, 5.0, size=200)
        predicted = actual * rng.uniform(0.8, 1.2, size=200)
        monitor = StreamAccuracyMonitor(window=500, percentile=90.0)
        for p, a in zip(predicted, actual):
            monitor.record(float(p), float(a))
        snap = monitor.snapshot()
        assert snap["window"] == 200
        assert snap["mae"] == pytest.approx(mae(predicted, actual))
        assert snap["mre"] == pytest.approx(mre(predicted, actual))
        assert snap["npre"] == pytest.approx(npre(predicted, actual, 90.0))

    def test_window_evicts_old_pairs(self):
        monitor = StreamAccuracyMonitor(window=10)
        for __ in range(50):
            monitor.record(2.0, 1.0)  # absolute error 1
        for __ in range(10):
            monitor.record(1.0, 1.0)  # absolute error 0 fills the window
        snap = monitor.snapshot()
        assert snap["window"] == 10
        assert snap["mae"] == 0.0

    def test_empty_snapshot_is_nan(self):
        snap = StreamAccuracyMonitor().snapshot()
        assert snap["window"] == 0
        assert math.isnan(snap["mae"])
        assert math.isnan(snap["mre"])
        assert math.isnan(snap["npre"])

    def test_non_finite_pairs_ignored(self):
        monitor = StreamAccuracyMonitor()
        monitor.record(float("nan"), 1.0)
        monitor.record(1.0, float("inf"))
        assert monitor.recorded == 0

    def test_bind_registers_gauges(self):
        registry = MetricsRegistry()
        monitor = StreamAccuracyMonitor()
        monitor.bind(registry, prefix="acc")
        monitor.record(1.5, 1.0)
        families = parse_prometheus_text(registry.render())
        assert families["acc_mae"]["samples"][("acc_mae", ())] == pytest.approx(
            0.5
        )
        assert families["acc_window_size"]["samples"][
            ("acc_window_size", ())
        ] == 1
