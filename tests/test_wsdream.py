"""Tests for the real WS-DREAM dataset#2 text-format loader."""

import numpy as np
import pytest

from repro.datasets.wsdream import (
    load_wsdream_directory,
    parse_quadruplet_lines,
    parse_triplet_lines,
    tensor_from_quadruplets,
)


class TestParseQuadruplets:
    def test_basic(self):
        lines = ["0 1 2 1.5", "3 4 5 0.25"]
        assert parse_quadruplet_lines(lines) == [(0, 1, 2, 1.5), (3, 4, 5, 0.25)]

    def test_blank_and_comment_lines_skipped(self):
        lines = ["", "# header", "  ", "0 0 0 1.0"]
        assert parse_quadruplet_lines(lines) == [(0, 0, 0, 1.0)]

    def test_wrong_field_count_reports_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_quadruplet_lines(["0 0 0 1.0", "0 0 1.0"])

    def test_non_numeric_rejected(self):
        with pytest.raises(ValueError, match="cannot parse"):
            parse_quadruplet_lines(["a b c d"])

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            parse_quadruplet_lines(["-1 0 0 1.0"])

    def test_tab_separated_accepted(self):
        assert parse_quadruplet_lines(["0\t1\t2\t3.5"]) == [(0, 1, 2, 3.5)]


class TestParseTriplets:
    def test_basic(self):
        assert parse_triplet_lines(["2 3 0.5"]) == [(2, 3, 0.5)]

    def test_wrong_field_count(self):
        with pytest.raises(ValueError, match="3 fields"):
            parse_triplet_lines(["1 2 3 4"])


class TestTensorFromQuadruplets:
    def test_shape_inferred(self):
        tensor, mask = tensor_from_quadruplets([(1, 2, 3, 0.5)])
        assert tensor.shape == (4, 2, 3)
        assert tensor[3, 1, 2] == 0.5
        assert mask[3, 1, 2]

    def test_explicit_shape(self):
        tensor, mask = tensor_from_quadruplets(
            [(0, 0, 0, 1.0)], n_users=5, n_services=6, n_slices=7
        )
        assert tensor.shape == (7, 5, 6)

    def test_indices_beyond_declared_shape_rejected(self):
        with pytest.raises(ValueError, match="exceed"):
            tensor_from_quadruplets([(9, 0, 0, 1.0)], n_users=5, n_services=2, n_slices=1)

    def test_invalid_markers_left_unobserved(self):
        """Dataset#2 marks failures as -1; they must not become observations."""
        tensor, mask = tensor_from_quadruplets(
            [(0, 0, 0, -1.0), (0, 1, 0, 2.0)], n_users=1, n_services=2, n_slices=1
        )
        assert not mask[0, 0, 0]
        assert mask[0, 0, 1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no QoS"):
            tensor_from_quadruplets([])


class TestLoadDirectory:
    def _write_dataset(self, tmp_path):
        (tmp_path / "rtdata.txt").write_text(
            "0 0 0 1.5\n0 1 0 0.5\n1 0 1 2.5\n1 1 1 -1\n"
        )
        (tmp_path / "tpdata.txt").write_text("0 0 0 100.0\n")

    def test_load_rt(self, tmp_path):
        self._write_dataset(tmp_path)
        data = load_wsdream_directory(str(tmp_path), attribute="response_time")
        assert data.tensor.shape == (2, 2, 2)
        assert data.tensor[0, 0, 0] == 1.5
        assert not data.mask[1, 1, 1]  # -1 marker
        assert data.value_max == 20.0
        assert data.attribute == "response_time"

    def test_load_tp_via_alias(self, tmp_path):
        self._write_dataset(tmp_path)
        data = load_wsdream_directory(str(tmp_path), attribute="tp")
        assert data.value_max == 7000.0
        assert data.unit == "kbps"

    def test_missing_file_clear_error(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="rtdata.txt"):
            load_wsdream_directory(str(tmp_path))

    def test_unknown_attribute(self, tmp_path):
        with pytest.raises(ValueError, match="attribute"):
            load_wsdream_directory(str(tmp_path), attribute="jitter")

    def test_loaded_data_feeds_pipeline(self, tmp_path):
        """Integration: real-format data flows into the slice/stream APIs."""
        self._write_dataset(tmp_path)
        data = load_wsdream_directory(str(tmp_path))
        matrix = data.slice(0)
        assert matrix.observed_values().size == 2
        from repro.datasets.stream import stream_from_matrix

        stream = stream_from_matrix(matrix, rng=0)
        assert len(stream) == 2
