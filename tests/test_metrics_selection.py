"""Tests for the adaptation-oriented selection metrics."""

import numpy as np
import pytest

from repro.metrics import selection_regret, sla_confusion, top_k_hit_rate


class TestTopKHitRate:
    def test_exact_hit(self):
        predicted = np.array([0.5, 1.0, 2.0])
        actual = np.array([0.4, 1.1, 2.2])
        assert top_k_hit_rate(predicted, actual, k=1) == 1.0

    def test_miss(self):
        predicted = np.array([0.5, 1.0])  # picks candidate 0
        actual = np.array([2.0, 0.3])  # candidate 1 is actually best
        assert top_k_hit_rate(predicted, actual, k=1) == 0.0

    def test_k_relaxation(self):
        predicted = np.array([0.5, 1.0, 2.0])  # picks 0
        actual = np.array([1.0, 0.5, 2.0])  # 0 is actual 2nd best
        assert top_k_hit_rate(predicted, actual, k=1) == 0.0
        assert top_k_hit_rate(predicted, actual, k=2) == 1.0

    def test_higher_is_better(self):
        predicted = np.array([10.0, 5.0])  # throughput: picks 0
        actual = np.array([9.0, 4.0])
        assert top_k_hit_rate(predicted, actual, k=1, lower_is_better=False) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_hit_rate(np.ones(3), np.ones(3), k=4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            top_k_hit_rate(np.array([]), np.array([]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            top_k_hit_rate(np.ones((2, 2)), np.ones((2, 2)))


class TestSelectionRegret:
    def test_zero_on_correct_pick(self):
        predicted = np.array([0.5, 1.0])
        actual = np.array([0.6, 1.2])
        assert selection_regret(predicted, actual) == 0.0

    def test_regret_value(self):
        predicted = np.array([0.5, 1.0])  # picks 0
        actual = np.array([2.0, 0.5])  # best is 1 at 0.5; picked 0 costs 2.0
        assert selection_regret(predicted, actual) == pytest.approx(1.5)

    def test_higher_is_better_direction(self):
        predicted = np.array([10.0, 50.0])  # picks 1
        actual = np.array([100.0, 40.0])  # best is 0 at 100
        assert selection_regret(predicted, actual, lower_is_better=False) == pytest.approx(60.0)

    def test_never_negative(self):
        rng = np.random.default_rng(0)
        for __ in range(50):
            predicted = rng.random(6)
            actual = rng.random(6)
            assert selection_regret(predicted, actual) >= 0.0


class TestSLAConfusion:
    def test_perfect_predictions(self):
        actual = np.array([1.0, 3.0, 5.0, 7.0])
        result = sla_confusion(actual, actual, threshold=4.0)
        assert result["accuracy"] == 1.0
        assert result["precision"] == 1.0
        assert result["recall"] == 1.0

    def test_counts(self):
        predicted = np.array([5.0, 1.0, 5.0, 1.0])
        actual = np.array([5.0, 5.0, 1.0, 1.0])
        result = sla_confusion(predicted, actual, threshold=4.0)
        assert result["tp"] == 1 and result["fn"] == 1
        assert result["fp"] == 1 and result["tn"] == 1
        assert result["accuracy"] == 0.5

    def test_throughput_direction(self):
        # Throughput below the threshold is the violation.
        predicted = np.array([10.0, 100.0])
        actual = np.array([5.0, 200.0])
        result = sla_confusion(predicted, actual, threshold=50.0, lower_is_better=False)
        assert result["tp"] == 1 and result["tn"] == 1

    def test_paper_motivating_example(self):
        """The Section IV-C-1 example expressed as decisions: MAE-optimal
        prediction (a) causes a wrong adaptation, (b) does not."""
        actual = np.array([1.0, 100.0])
        prediction_a = np.array([8.0, 99.0])
        prediction_b = np.array([0.9, 92.0])
        # Service 1's SLA: violate when RT > 5.
        a = sla_confusion(prediction_a[:1], actual[:1], threshold=5.0)
        b = sla_confusion(prediction_b[:1], actual[:1], threshold=5.0)
        assert a["fp"] == 1  # (a) wrongly predicts a violation
        assert b["fp"] == 0

    def test_nan_when_undefined(self):
        result = sla_confusion(np.array([1.0]), np.array([1.0]), threshold=5.0)
        assert np.isnan(result["precision"])  # no predicted violations
        assert np.isnan(result["recall"])  # no actual violations

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sla_confusion(np.array([]), np.array([]), threshold=1.0)
