"""Tests for the ``python -m repro`` experiment CLI."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_registered(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.attribute == ["response_time", "throughput"]
        assert args.density == [0.10, 0.20, 0.30, 0.40, 0.50]
        assert not args.paper_scale

    def test_scale_overrides(self):
        args = build_parser().parse_args(
            ["fig9", "--users", "10", "--services", "20", "--seed", "7"]
        )
        assert (args.users, args.services, args.seed) == (10, 20, 7)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_invalid_attribute_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--attribute", "jitter"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_fig9_smoke(self, capsys):
        code = main(["fig9", "--users", "20", "--services", "40", "--slices", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 9" in out

    def test_fig2_fig6_smoke(self, capsys):
        code = main(
            ["fig2-fig6", "--users", "20", "--services", "40", "--slices", "2"]
        )
        assert code == 0
        assert "Fig. 6" in capsys.readouterr().out

    def test_table1_smoke(self, capsys):
        code = main(
            [
                "table1",
                "--users", "20", "--services", "40", "--slices", "1",
                "--reruns", "1",
                "--density", "0.3",
                "--attribute", "response_time",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "AMF" in out
