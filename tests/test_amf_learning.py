"""Learning-quality tests for AMF: does the model actually learn the
structures the paper claims it learns, and do the adaptive weights deliver
their promised churn robustness?

These are statistical tests on small synthetic problems with fixed seeds —
slower than the unit tests but still sub-second each.
"""

import numpy as np
import pytest

from repro.core import AdaptiveMatrixFactorization, AMFConfig, StreamTrainer
from repro.datasets import train_test_split_matrix
from repro.datasets.schema import QoSMatrix, QoSRecord
from repro.datasets.stream import stream_from_matrix
from repro.metrics import mre


def train_on_matrix(matrix, config=None, rng=0, epochs=40):
    model = AdaptiveMatrixFactorization(config or AMFConfig(), rng=rng)
    model.ensure_user(matrix.n_users - 1)
    model.ensure_service(matrix.n_services - 1)
    stream = stream_from_matrix(matrix, rng=rng)
    model.observe_many(list(stream))
    for __ in range(epochs):
        model.replay_many(now=0.0, count=model.n_stored_samples)
    return model


class TestRecoversStructure:
    def test_fits_rank_one_matrix(self, rank_one_matrix):
        """A noiseless rank-1 matrix must be reconstructible to low error.

        ``value_floor=0.1`` keeps the normalized values spread across the
        sigmoid's responsive range (data lives in [0.25, 4]); the default
        1e-3 floor would compress everything into the saturated top.
        """
        config = AMFConfig(value_min=0.0, value_max=5.0, alpha=0.0, value_floor=0.1)
        train, test = train_test_split_matrix(rank_one_matrix, 0.5, rng=0)
        model = train_on_matrix(train, config, epochs=60)
        rows, cols = test.observed_indices()
        predicted = model.predict_matrix()[rows, cols]
        assert mre(predicted, test.values[rows, cols]) < 0.15

    def test_user_specific_predictions(self):
        """Two users with different scales on shared services must get
        different predictions for a held-out service (Fig. 2(b) property)."""
        rng = np.random.default_rng(0)
        base = rng.uniform(0.5, 2.0, size=30)
        values = np.vstack([base * 0.5, base * 4.0] * 5)  # 10 users alternate
        matrix = QoSMatrix.dense(values)
        train, __ = train_test_split_matrix(matrix, 0.7, rng=0)
        config = AMFConfig(value_min=0.0, value_max=10.0, alpha=0.0)
        model = train_on_matrix(train, config)
        predictions = model.predict_matrix()
        fast_users = predictions[0::2].mean()
        slow_users = predictions[1::2].mean()
        assert slow_users > 2 * fast_users

    def test_beats_global_mean_on_synthetic_data(self, small_dataset):
        matrix = small_dataset.slice(0)
        train, test = train_test_split_matrix(matrix, 0.3, rng=1)
        model = train_on_matrix(train, AMFConfig.for_response_time(), rng=1)
        rows, cols = test.observed_indices()
        actual = test.values[rows, cols]
        amf_mre = mre(model.predict_matrix()[rows, cols], actual)
        mean_mre = mre(np.full(actual.shape, train.observed_values().mean()), actual)
        assert amf_mre < mean_mre

    def test_online_adapts_to_drift(self):
        """When every value shifts, the online model follows (Limitation 2)."""
        rng = np.random.default_rng(0)
        base = np.outer(rng.uniform(0.5, 2, 10), rng.uniform(0.5, 2, 15))
        config = AMFConfig(value_min=0.0, value_max=20.0, alpha=0.0)
        model = train_on_matrix(QoSMatrix.dense(base), config)
        before = model.predict_matrix().mean()
        # The world changes: all QoS triples.
        model.observe_many(QoSMatrix.dense(base * 3.0).records(timestamp=1000.0))
        for __ in range(40):
            model.replay_many(now=1000.0, count=model.n_stored_samples)
        after = model.predict_matrix().mean()
        assert after > 2.0 * before


class TestAdaptiveWeightsBehaviour:
    def _churn_experiment(self, beta: float, seed: int = 0):
        """Warm up on 8 users, then inject 2 new users; measure how much the
        converged service factors move during the newcomers' integration."""
        rng = np.random.default_rng(seed)
        values = np.outer(rng.uniform(0.5, 2, 10), rng.uniform(0.5, 2, 20))
        matrix = QoSMatrix.dense(values)
        config = AMFConfig(value_min=0.0, value_max=10.0, alpha=0.0, beta=beta)
        existing = QoSMatrix(values=matrix.values, mask=matrix.mask.copy())
        existing.mask[8:, :] = False
        model = train_on_matrix(existing, config, rng=seed)
        services_before = model.service_factors()

        newcomer_mask = np.zeros_like(matrix.mask)
        newcomer_mask[8:, :] = True
        newcomers = QoSMatrix(values=matrix.values, mask=newcomer_mask)
        model.observe_many(newcomers.records())
        for __ in range(10):  # brief continued online training after the join
            model.replay_many(now=0.0, count=model.n_stored_samples)
        drift = np.abs(model.service_factors() - services_before).mean()
        return drift, model

    def test_new_user_error_starts_maximal(self):
        model = AdaptiveMatrixFactorization(rng=0)
        model.ensure_user(0)
        assert model.weights.user_error(0) == 1.0

    def test_converged_entities_resist_newcomers(self):
        """Service factors must move only slightly when new users join —
        the whole point of adaptive weights (Limitation 3)."""
        drift, model = self._churn_experiment(beta=0.3)
        typical_magnitude = np.abs(model.service_factors()).mean()
        assert drift < 0.2 * typical_magnitude

    def test_newcomers_get_large_share_of_updates(self):
        __, model = self._churn_experiment(beta=0.3)
        # After integration, newcomer predictions should already be usable.
        predictions = model.predict_matrix()[8:, :]
        rng = np.random.default_rng(0)
        values = np.outer(rng.uniform(0.5, 2, 10), rng.uniform(0.5, 2, 20))[8:, :]
        assert mre(predictions.ravel(), values.ravel()) < 0.35

    def test_weights_shift_toward_new_entity(self):
        """When a new user invokes a converged service, w_u >> w_s."""
        model = AdaptiveMatrixFactorization(rng=0)
        # Converge service 0 with user 0.
        for __ in range(300):
            model.observe(QoSRecord(timestamp=0, user_id=0, service_id=0, value=1.0))
        model.ensure_user(1)
        w_u, w_s = model.weights.credence(1, 0)
        assert w_u > 0.8


class TestEndToEndAccuracy:
    @pytest.mark.parametrize("attribute,alpha,vmax", [
        ("response_time", -0.007, 20.0),
    ])
    def test_matches_paper_shape_on_synthetic_twin(
        self, small_dataset, attribute, alpha, vmax
    ):
        """MRE on the synthetic twin at 30% density should be in the same
        ballpark as the paper's (0.3-0.5), far below 1.0."""
        matrix = small_dataset.slice(0)
        train, test = train_test_split_matrix(matrix, 0.3, rng=2)
        config = AMFConfig(alpha=alpha, value_min=0.0, value_max=vmax)
        model = AdaptiveMatrixFactorization(config, rng=2)
        model.ensure_user(matrix.n_users - 1)
        model.ensure_service(matrix.n_services - 1)
        trainer = StreamTrainer(model)
        report = trainer.process(stream_from_matrix(train, rng=2))
        assert report.converged
        rows, cols = test.observed_indices()
        assert mre(model.predict_matrix()[rows, cols], test.values[rows, cols]) < 0.6

    def test_more_data_helps(self, small_dataset):
        """Fig. 12 property: denser training -> lower error."""
        matrix = small_dataset.slice(0)
        errors = []
        for density in (0.05, 0.4):
            train, test = train_test_split_matrix(matrix, density, rng=3)
            model = train_on_matrix(train, AMFConfig.for_response_time(), rng=3)
            rows, cols = test.observed_indices()
            errors.append(mre(model.predict_matrix()[rows, cols], test.values[rows, cols]))
        assert errors[1] < errors[0]

    def test_boxcox_beats_linear_normalization(self):
        """Fig. 11 property on the synthetic twin.

        Uses a 60x120 matrix: at very small scales the advantage is inside
        the noise, at this scale it is consistent across seeds.
        """
        from repro.datasets import generate_dataset

        matrix = generate_dataset(n_users=60, n_services=120, n_slices=1, seed=123).slice(0)
        train, test = train_test_split_matrix(matrix, 0.3, rng=4)
        rows, cols = test.observed_indices()
        actual = test.values[rows, cols]

        tuned = train_on_matrix(train, AMFConfig.for_response_time(), rng=4)
        linear = train_on_matrix(
            train,
            AMFConfig.for_response_time(alpha=1.0, learning_rate=0.05),
            rng=4,
        )
        tuned_mre = mre(tuned.predict_matrix()[rows, cols], actual)
        linear_mre = mre(linear.predict_matrix()[rows, cols], actual)
        assert tuned_mre < linear_mre
