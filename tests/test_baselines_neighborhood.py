"""Tests for UPCC/IPCC/UIPCC and the vectorized PCC similarity.

The similarity implementation is verified against scipy.stats.pearsonr on
the co-observed entries — the ground-truth definition from reference [17].
"""

import numpy as np
import pytest
from scipy import stats

from repro.baselines import IPCC, UIPCC, UPCC, pcc_similarity_matrix
from repro.baselines.neighborhood import _neighborhood_predict, _top_k_positive
from repro.datasets import train_test_split_matrix
from repro.datasets.schema import QoSMatrix
from repro.metrics import mae


def reference_pcc(values, mask, a, b):
    """Straightforward per-pair PCC over co-observed columns (scipy)."""
    shared = mask[a] & mask[b]
    if shared.sum() < 2:
        return 0.0
    x, y = values[a, shared], values[b, shared]
    if np.std(x) == 0 or np.std(y) == 0:
        return 0.0
    return stats.pearsonr(x, y)[0]


class TestPCCSimilarity:
    def test_matches_scipy_on_random_matrix(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0.1, 5.0, size=(8, 30))
        mask = rng.random((8, 30)) > 0.3
        similarity = pcc_similarity_matrix(values, mask)
        for a in range(8):
            for b in range(8):
                if a == b:
                    continue
                expected = reference_pcc(values, mask, a, b)
                assert similarity[a, b] == pytest.approx(expected, abs=1e-9), (a, b)

    def test_symmetric(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0.1, 5.0, size=(10, 20))
        mask = rng.random((10, 20)) > 0.4
        similarity = pcc_similarity_matrix(values, mask)
        np.testing.assert_allclose(similarity, similarity.T, atol=1e-12)

    def test_diagonal_zeroed(self):
        rng = np.random.default_rng(2)
        similarity = pcc_similarity_matrix(rng.random((5, 9)), np.ones((5, 9), dtype=bool))
        np.testing.assert_array_equal(np.diag(similarity), np.zeros(5))

    def test_identical_rows_similarity_one(self):
        values = np.vstack([np.arange(1.0, 9.0)] * 2) + np.array([[0.0], [1.0]])
        similarity = pcc_similarity_matrix(values, np.ones((2, 8), dtype=bool))
        assert similarity[0, 1] == pytest.approx(1.0)

    def test_anti_correlated_rows(self):
        values = np.array([[1.0, 2, 3, 4], [4.0, 3, 2, 1]])
        similarity = pcc_similarity_matrix(values, np.ones((2, 4), dtype=bool))
        assert similarity[0, 1] == pytest.approx(-1.0)

    def test_min_overlap_enforced(self):
        values = np.array([[1.0, 2.0, 0.0], [1.5, 0.0, 3.0]])
        mask = np.array([[True, True, False], [True, False, True]])  # overlap 1
        similarity = pcc_similarity_matrix(values, mask, min_overlap=2)
        assert similarity[0, 1] == 0.0

    def test_constant_row_zero_similarity(self):
        values = np.array([[2.0, 2.0, 2.0], [1.0, 3.0, 5.0]])
        similarity = pcc_similarity_matrix(values, np.ones((2, 3), dtype=bool))
        assert similarity[0, 1] == 0.0

    def test_clipped_to_unit_interval(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(0.1, 5.0, size=(12, 25))
        mask = rng.random((12, 25)) > 0.5
        similarity = pcc_similarity_matrix(values, mask)
        assert similarity.max() <= 1.0 and similarity.min() >= -1.0

    def test_invalid_min_overlap(self):
        with pytest.raises(ValueError):
            pcc_similarity_matrix(np.ones((2, 2)), np.ones((2, 2), dtype=bool), min_overlap=0)


class TestTopKPruning:
    def test_keeps_only_k_per_row(self):
        similarity = np.array([[0.0, 0.9, 0.5, 0.7], [0.9, 0.0, 0.2, 0.1]])
        pruned = _top_k_positive(similarity, top_k=2)
        assert (pruned[0] > 0).sum() == 2
        assert pruned[0, 1] == 0.9 and pruned[0, 3] == 0.7

    def test_negative_similarities_dropped(self):
        similarity = np.array([[0.0, -0.9, 0.5]])
        pruned = _top_k_positive(similarity, top_k=3)
        assert pruned[0, 1] == 0.0

    def test_k_larger_than_row(self):
        similarity = np.array([[0.0, 0.3]])
        np.testing.assert_array_equal(_top_k_positive(similarity, 10), similarity)


class TestUPCC:
    def test_perfect_on_duplicate_users(self):
        """Users with identical QoS profiles predict each other exactly."""
        base = np.linspace(1.0, 5.0, 12)
        values = np.vstack([base, base, base + 2.0])
        mask = np.ones((3, 12), dtype=bool)
        mask[0, 0] = False  # hide one entry of user 0
        model = UPCC(top_k=2).fit(QoSMatrix(values=values, mask=mask))
        # User 1 (identical) should nearly reconstruct the hidden value —
        # exact recovery is impossible because hiding the entry shifts user
        # 0's own mean, but the result must be far closer to the truth than
        # the row-mean fallback would be.
        predicted = model.predict_matrix()[0, 0]
        row_mean = values[0, 1:].mean()
        assert abs(predicted - base[0]) < 0.25
        assert abs(predicted - base[0]) < abs(row_mean - base[0]) / 5

    def test_fallback_to_user_mean_when_no_neighbors(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(1, 5, size=(2, 6))
        mask = np.zeros((2, 6), dtype=bool)
        mask[0, :3] = True  # users observe disjoint services: no overlap
        mask[1, 3:] = True
        model = UPCC().fit(QoSMatrix(values=values, mask=mask))
        assert model.predict_matrix()[0, 5] == pytest.approx(values[0, :3].mean())

    def test_supported_mask_shape(self, small_dataset):
        matrix = small_dataset.slice(0)
        train, __ = train_test_split_matrix(matrix, 0.3, rng=0)
        model = UPCC().fit(train)
        assert model.supported_mask().shape == train.shape

    def test_empty_matrix_rejected(self):
        empty = QoSMatrix(values=np.zeros((2, 2)), mask=np.zeros((2, 2), dtype=bool))
        with pytest.raises(ValueError):
            UPCC().fit(empty)


class TestIPCC:
    def test_perfect_on_duplicate_services(self):
        base = np.linspace(1.0, 5.0, 10)
        # Offset (not scaled) duplicates: PCC finds them perfectly similar
        # and the mean-centered deviations transfer exactly.
        values = np.column_stack([base, base, base + 2.0])
        mask = np.ones((10, 3), dtype=bool)
        mask[0, 0] = False
        model = IPCC(top_k=2).fit(QoSMatrix(values=values, mask=mask))
        predicted = model.predict_matrix()[0, 0]
        column_mean = values[1:, 0].mean()
        assert abs(predicted - base[0]) < 0.6
        assert abs(predicted - base[0]) < abs(column_mean - base[0]) / 5

    def test_transpose_duality_with_upcc(self):
        """IPCC on M == UPCC on M^T."""
        rng = np.random.default_rng(4)
        values = rng.uniform(0.5, 4.0, size=(7, 9))
        mask = rng.random((7, 9)) > 0.25
        matrix = QoSMatrix(values=values, mask=mask)
        transposed = QoSMatrix(values=values.T.copy(), mask=mask.T.copy())
        ipcc = IPCC(top_k=3).fit(matrix).predict_matrix()
        upcc_t = UPCC(top_k=3).fit(transposed).predict_matrix()
        np.testing.assert_allclose(ipcc, upcc_t.T, atol=1e-10)


class TestUIPCC:
    def test_blend_when_both_supported(self):
        rng = np.random.default_rng(5)
        values = rng.uniform(0.5, 4.0, size=(12, 15))
        matrix = QoSMatrix.dense(values)
        lam = 0.3
        hybrid = UIPCC(lam=lam, top_k=4).fit(matrix)
        user_pred = hybrid.user_model.predict_matrix()
        item_pred = hybrid.item_model.predict_matrix()
        both = hybrid.user_model.supported_mask() & hybrid.item_model.supported_mask()
        expected = lam * user_pred + (1 - lam) * item_pred
        np.testing.assert_allclose(
            hybrid.predict_matrix()[both], expected[both], atol=1e-12
        )

    def test_lam_one_is_upcc_where_supported(self, small_dataset):
        matrix = small_dataset.slice(0)
        train, __ = train_test_split_matrix(matrix, 0.3, rng=0)
        hybrid = UIPCC(lam=1.0, top_k=5).fit(train)
        upcc = hybrid.user_model
        supported = upcc.supported_mask()
        np.testing.assert_allclose(
            hybrid.predict_matrix()[supported],
            upcc.predict_matrix()[supported],
        )

    def test_invalid_lam(self):
        with pytest.raises(ValueError):
            UIPCC(lam=1.5)

    def test_accuracy_reasonable_on_twin(self, small_dataset):
        """UIPCC must comfortably beat the global mean on the synthetic twin."""
        matrix = small_dataset.slice(0)
        train, test = train_test_split_matrix(matrix, 0.3, rng=1)
        model = UIPCC().fit(train)
        rows, cols = test.observed_indices()
        actual = test.values[rows, cols]
        uipcc_mae = mae(model.predict_entries(rows, cols), actual)
        mean_mae = mae(np.full(actual.shape, train.observed_values().mean()), actual)
        assert uipcc_mae < mean_mae
