"""Tests for the WS-DREAM statistical twin generator.

The generator's contract is distributional: ranges, calibrated means, skew,
approximate low rank, temporal persistence, user-specificity, and RT/TP
anti-correlation.  Each test checks one of those properties on a fixed seed.
"""

import numpy as np
import pytest

from repro.datasets.synthetic import SyntheticConfig, WSDreamGenerator, generate_dataset


@pytest.fixture(scope="module")
def pair():
    config = SyntheticConfig().scaled(50, 120, 16)
    return WSDreamGenerator(config, seed=7).generate_pair()


class TestConfig:
    def test_defaults_match_paper_scale(self):
        config = SyntheticConfig()
        assert (config.n_users, config.n_services, config.n_slices) == (142, 4500, 64)
        assert config.slice_seconds == 900.0

    def test_scaled_copy(self):
        scaled = SyntheticConfig().scaled(10, 20, 3)
        assert (scaled.n_users, scaled.n_services, scaled.n_slices) == (10, 20, 3)
        assert SyntheticConfig().n_users == 142  # original untouched

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_users", 0),
            ("slice_seconds", 0.0),
            ("temporal_rho", 1.5),
            ("timeout_prob", -0.1),
            ("missing_rate", 2.0),
            ("rt_mean", 0.0),
            ("user_sigma", -1.0),
        ],
    )
    def test_invalid_config_rejected(self, field, value):
        with pytest.raises(ValueError):
            SyntheticConfig(**{field: value})


class TestShapesAndRanges:
    def test_tensor_shapes(self, pair):
        rt, tp = pair
        assert rt.tensor.shape == (16, 50, 120)
        assert tp.tensor.shape == (16, 50, 120)

    def test_rt_within_range(self, pair):
        rt, __ = pair
        assert rt.tensor.min() >= 0.0
        assert rt.tensor.max() <= 20.0

    def test_tp_within_range(self, pair):
        __, tp = pair
        assert tp.tensor.min() >= 0.0
        assert tp.tensor.max() <= 7000.0

    def test_attributes_labelled(self, pair):
        rt, tp = pair
        assert rt.attribute == "response_time" and rt.unit == "s"
        assert tp.attribute == "throughput" and tp.unit == "kbps"

    def test_masks_identical_between_attributes(self, pair):
        """One invocation yields both measurements, so the masks agree."""
        rt, tp = pair
        np.testing.assert_array_equal(rt.mask, tp.mask)

    def test_missing_rate_respected(self, pair):
        rt, __ = pair
        observed_fraction = rt.mask.mean()
        assert observed_fraction == pytest.approx(0.98, abs=0.01)


class TestDistributionalProperties:
    def test_rt_mean_calibrated(self, pair):
        rt, __ = pair
        assert rt.observed_values().mean() == pytest.approx(1.33, rel=0.25)

    def test_rt_right_skewed(self, pair):
        rt, __ = pair
        values = rt.observed_values()
        assert np.median(values) < values.mean()  # heavy right tail

    def test_timeout_spike_present(self, pair):
        rt, __ = pair
        assert (rt.tensor == 20.0).mean() > 0.001

    def test_low_rank_structure(self, pair):
        """Fig. 9 property: leading singular values dominate the spectrum."""
        rt, __ = pair
        spectrum = np.linalg.svd(rt.tensor[0], compute_uv=False)
        top5 = (spectrum[:5] ** 2).sum()
        assert top5 / (spectrum**2).sum() > 0.5

    def test_user_specificity(self, pair):
        """Different users see systematically different QoS on the same
        services (Fig. 2(b) property)."""
        rt, __ = pair
        user_means = rt.tensor[0].mean(axis=1)
        assert user_means.max() / user_means.min() > 1.5

    def test_temporal_persistence(self, pair):
        """Adjacent slices correlate more than distant ones (AR(1))."""
        rt, __ = pair
        log_rt = np.log(np.maximum(rt.tensor, 1e-3))
        flat = log_rt.reshape(rt.n_slices, -1)
        adjacent = np.corrcoef(flat[0], flat[1])[0, 1]
        distant = np.corrcoef(flat[0], flat[15])[0, 1]
        assert adjacent > distant

    def test_fluctuation_around_stable_mean(self, pair):
        """Fig. 2(a): per-pair values vary over time but stay around a mean."""
        rt, __ = pair
        series = rt.tensor[:, 0, 0]
        assert series.std() > 0
        assert series.std() < series.mean() * 2

    def test_rt_tp_anticorrelated(self, pair):
        rt, tp = pair
        log_rt = np.log(np.maximum(rt.tensor[0].ravel(), 1e-3))
        log_tp = np.log(np.maximum(tp.tensor[0].ravel(), 1e-3))
        assert np.corrcoef(log_rt, log_tp)[0, 1] < -0.3


class TestDeterminism:
    def test_same_seed_same_data(self):
        config = SyntheticConfig().scaled(10, 20, 2)
        a = WSDreamGenerator(config, seed=3).generate_response_time()
        b = WSDreamGenerator(config, seed=3).generate_response_time()
        np.testing.assert_array_equal(a.tensor, b.tensor)
        np.testing.assert_array_equal(a.mask, b.mask)

    def test_different_seed_different_data(self):
        config = SyntheticConfig().scaled(10, 20, 2)
        a = WSDreamGenerator(config, seed=3).generate_response_time()
        b = WSDreamGenerator(config, seed=4).generate_response_time()
        assert not np.allclose(a.tensor, b.tensor)

    def test_rt_consistent_between_pair_and_single(self):
        config = SyntheticConfig().scaled(10, 20, 2)
        pair_rt, __ = WSDreamGenerator(config, seed=3).generate_pair()
        single_rt = WSDreamGenerator(config, seed=3).generate_response_time()
        np.testing.assert_array_equal(pair_rt.tensor, single_rt.tensor)


class TestGenerateDatasetHelper:
    def test_default_shape(self):
        data = generate_dataset(n_users=12, n_services=20, n_slices=2, seed=0)
        assert (data.n_slices, data.n_users, data.n_services) == (2, 12, 20)

    def test_attribute_aliases(self):
        rt = generate_dataset(n_users=5, n_services=8, n_slices=1, seed=0, attribute="rt")
        tp = generate_dataset(n_users=5, n_services=8, n_slices=1, seed=0, attribute="tp")
        assert rt.attribute == "response_time"
        assert tp.attribute == "throughput"

    def test_unknown_attribute_rejected(self):
        with pytest.raises(ValueError, match="attribute"):
            generate_dataset(attribute="latency")
