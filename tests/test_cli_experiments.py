"""CLI smoke tests for the remaining experiment dispatchers at tiny scale.

test_cli.py covers the parser and the fast dispatchers; this file runs the
heavier experiment entry points through the same ``main()`` path with
aggressively reduced sizes, so a CLI wiring regression in any artifact is
caught without minutes of runtime.
"""

import pytest

from repro.cli import main

TINY_ARGS = ["--users", "24", "--services", "48", "--slices", "2", "--reruns", "1"]


@pytest.mark.parametrize(
    "experiment,extra,expect",
    [
        ("fig7-8", ["--attribute", "response_time"], "Fig. 7"),
        ("fig10", ["--attribute", "response_time", "--density", "0.3"], "Fig. 10"),
        (
            "fig11",
            ["--attribute", "response_time", "--density", "0.3"],
            "Fig. 11",
        ),
        ("fig12", ["--attribute", "response_time", "--density", "0.2", "0.4"], "Fig. 12"),
        ("fig13", ["--density", "0.3"], "Fig. 13"),
        ("fig14", ["--density", "0.3"], "Fig. 14"),
        ("all-slices", ["--attribute", "response_time", "--density", "0.3"], "all slices"),
        ("selection", ["--attribute", "response_time", "--density", "0.3"], "selection"),
    ],
)
def test_cli_dispatch(experiment, extra, expect, capsys):
    code = main([experiment, *TINY_ARGS, *extra])
    assert code == 0
    out = capsys.readouterr().out
    assert expect.lower() in out.lower()


def test_cli_fig12_overrides_density_list(capsys):
    code = main(
        ["fig12", *TINY_ARGS, "--attribute", "response_time", "--density", "0.2", "0.4"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "20%" in out and "40%" in out
