"""Tests for the simulated clock and churn schedules."""

import numpy as np
import pytest

from repro.simulation import ChurnEvent, ChurnSchedule, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0
        assert SimClock().current_slice == 0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(100.0) == 100.0
        assert clock.now == 100.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(500.0)
        assert clock.now == 500.0
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(100.0)

    def test_slice_tracking(self):
        clock = SimClock(slice_seconds=900.0)
        clock.advance(950.0)
        assert clock.current_slice == 1
        assert clock.slice_start() == 900.0
        assert clock.slice_start(3) == 2700.0

    def test_advance_to_next_slice(self):
        clock = SimClock(slice_seconds=900.0, start=100.0)
        assert clock.advance_to_next_slice() == 900.0
        assert clock.advance_to_next_slice() == 1800.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SimClock(slice_seconds=0.0)
        with pytest.raises(ValueError):
            SimClock(start=-5.0)

    def test_negative_slice_id_rejected(self):
        with pytest.raises(ValueError):
            SimClock().slice_start(-1)


class TestChurnEvent:
    def test_valid(self):
        event = ChurnEvent(timestamp=5.0, entity_kind="user", entity_id=3, action="join")
        assert event.entity_id == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(timestamp=5.0, entity_kind="robot", entity_id=3, action="join"),
            dict(timestamp=5.0, entity_kind="user", entity_id=3, action="explode"),
            dict(timestamp=5.0, entity_kind="user", entity_id=-1, action="join"),
            dict(timestamp=-5.0, entity_kind="user", entity_id=3, action="join"),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ChurnEvent(**kwargs)


class TestChurnSchedule:
    def _events(self):
        return [
            ChurnEvent(timestamp=t, entity_kind="user", entity_id=k, action="join")
            for k, t in enumerate([30.0, 10.0, 20.0])
        ]

    def test_sorted_by_time(self):
        schedule = ChurnSchedule(self._events())
        assert [e.timestamp for e in schedule.all_events] == [10.0, 20.0, 30.0]

    def test_pop_due_consumes_in_order(self):
        schedule = ChurnSchedule(self._events())
        due = schedule.pop_due(20.0)
        assert [e.timestamp for e in due] == [10.0, 20.0]
        assert len(schedule) == 1
        assert schedule.pop_due(20.0) == []  # already consumed

    def test_peek_nondestructive(self):
        schedule = ChurnSchedule(self._events())
        assert schedule.peek().timestamp == 10.0
        assert len(schedule) == 3

    def test_peek_empty(self):
        assert ChurnSchedule().peek() is None

    def test_paper_scalability_factory(self):
        schedule, eu, nu, es, ns = ChurnSchedule.paper_scalability(
            n_users=100, n_services=200, join_time=400.0, existing_fraction=0.8, rng=0
        )
        assert len(eu) == 80 and len(nu) == 20
        assert len(es) == 160 and len(ns) == 40
        assert len(schedule) == 60  # every new entity joins once
        assert all(e.timestamp == 400.0 for e in schedule.all_events)
        joined_users = {e.entity_id for e in schedule.all_events if e.entity_kind == "user"}
        assert joined_users == set(int(x) for x in nu)

    def test_paper_scalability_partition(self):
        __, eu, nu, es, ns = ChurnSchedule.paper_scalability(50, 60, rng=1)
        np.testing.assert_array_equal(np.sort(np.concatenate([eu, nu])), np.arange(50))
        np.testing.assert_array_equal(np.sort(np.concatenate([es, ns])), np.arange(60))
