"""Tests for the singular-spectrum utilities behind Fig. 9."""

import numpy as np
import pytest

from repro.datasets.schema import QoSMatrix
from repro.metrics.lowrank import effective_rank, normalized_singular_values


class TestNormalizedSingularValues:
    def test_leading_value_is_one(self):
        rng = np.random.default_rng(0)
        spectrum = normalized_singular_values(rng.random((10, 15)))
        assert spectrum[0] == pytest.approx(1.0)

    def test_descending(self):
        rng = np.random.default_rng(0)
        spectrum = normalized_singular_values(rng.random((10, 15)))
        assert np.all(np.diff(spectrum) <= 1e-12)

    def test_rank_one_matrix(self):
        matrix = np.outer(np.arange(1, 5), np.arange(1, 7))
        spectrum = normalized_singular_values(matrix, top_k=3)
        assert spectrum[0] == pytest.approx(1.0)
        assert spectrum[1] == pytest.approx(0.0, abs=1e-10)

    def test_identity_flat_spectrum(self):
        spectrum = normalized_singular_values(np.eye(5))
        np.testing.assert_allclose(spectrum, np.ones(5))

    def test_top_k_truncation(self):
        rng = np.random.default_rng(0)
        assert normalized_singular_values(rng.random((8, 8)), top_k=3).shape == (3,)

    def test_sparse_matrix_mean_fill(self):
        rng = np.random.default_rng(0)
        matrix = QoSMatrix(
            values=rng.random((6, 8)) + 1.0, mask=rng.random((6, 8)) > 0.3
        )
        spectrum = normalized_singular_values(matrix)
        assert spectrum[0] == 1.0
        assert len(spectrum) == 6

    def test_fill_modes(self):
        rng = np.random.default_rng(0)
        matrix = QoSMatrix(
            values=rng.random((6, 8)) + 1.0, mask=rng.random((6, 8)) > 0.3
        )
        mean_fill = normalized_singular_values(matrix, fill="mean")
        zero_fill = normalized_singular_values(matrix, fill="zero")
        assert not np.allclose(mean_fill, zero_fill)
        with pytest.raises(ValueError, match="fill"):
            normalized_singular_values(matrix, fill="median")

    def test_zero_matrix_rejected(self):
        with pytest.raises(ValueError, match="positive singular"):
            normalized_singular_values(np.zeros((4, 4)))

    def test_invalid_top_k(self):
        with pytest.raises(ValueError):
            normalized_singular_values(np.eye(3), top_k=0)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            normalized_singular_values(np.ones(5))


class TestEffectiveRank:
    def test_rank_one(self):
        matrix = np.outer(np.arange(1, 5), np.arange(1, 7)).astype(float)
        assert effective_rank(matrix) == 1

    def test_identity_needs_most_dimensions(self):
        assert effective_rank(np.eye(10), energy=0.9) == 9

    def test_low_rank_synthetic_qos(self, small_dataset):
        """Fig. 9 claim on the twin: 90% of energy in a handful of SVs."""
        matrix = small_dataset.slice(0)
        assert effective_rank(matrix) <= 12

    def test_invalid_energy(self):
        with pytest.raises(ValueError):
            effective_rank(np.eye(3), energy=0.0)
