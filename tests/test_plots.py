"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.utils.plots import bar_histogram, line_plot, sparkline


class TestLinePlot:
    def test_basic_render(self):
        out = line_plot({"a": [0, 1, 2, 3]}, height=4, width=20, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 6  # title + 4 rows + legend
        assert "* a" in lines[-1]

    def test_extremes_on_correct_rows(self):
        out = line_plot({"a": [0.0, 10.0]}, height=5, width=10)
        lines = out.splitlines()
        assert "*" in lines[0]  # max on top row
        assert "*" in lines[-2]  # min on bottom data row

    def test_multiple_series_markers(self):
        out = line_plot({"a": [0, 1], "b": [1, 0]}, height=4, width=10)
        assert "*" in out and "o" in out

    def test_nan_points_skipped(self):
        out = line_plot({"a": [0.0, float("nan"), 2.0]}, height=4, width=12)
        assert "*" in out

    def test_constant_series_ok(self):
        out = line_plot({"a": [1.0, 1.0, 1.0]}, height=3, width=9)
        assert "*" in out

    @pytest.mark.parametrize(
        "series,match",
        [
            ({}, "no series"),
            ({"a": [1.0]}, "two points"),
            ({"a": [1.0, 2.0], "b": [1.0]}, "lengths"),
            ({"a": [float("nan")] * 3}, "two points|finite"),
        ],
    )
    def test_invalid_inputs(self, series, match):
        with pytest.raises(ValueError, match=match):
            line_plot(series, height=4, width=10)

    def test_tiny_dimensions_rejected(self):
        with pytest.raises(ValueError):
            line_plot({"a": [0, 1]}, height=1, width=10)


class TestBarHistogram:
    def test_peak_uses_densest_glyph(self):
        centers = np.linspace(0, 1, 10)
        heights = np.zeros(10)
        heights[5] = 1.0
        out = bar_histogram(centers, heights, width=30)
        assert "@" in out

    def test_axis_bounds_printed(self):
        out = bar_histogram([0.0, 0.5, 1.0], [1, 2, 1], width=30)
        assert "0" in out and "1" in out

    def test_empty_heights_render_blank(self):
        out = bar_histogram([0.0, 1.0], [0.0, 0.0], width=10)
        assert "|          |" in out

    def test_negative_heights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            bar_histogram([0.0, 1.0], [1.0, -1.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_histogram([0.0, 1.0], [1.0])


class TestSparkline:
    def test_length_preserved(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_nan_rendered_as_space(self):
        assert " " in sparkline([1.0, float("nan"), 2.0])

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            sparkline([float("nan")])

    def test_constant_series(self):
        assert sparkline([2.0, 2.0]) == "▁▁"
