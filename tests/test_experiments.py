"""Tests for the experiment modules: each one runs at tiny scale and must
produce a structurally valid result with the paper's qualitative shape.
"""

import numpy as np
import pytest

from repro.experiments.accuracy import Table1Result, run_table1
from repro.experiments.data_stats import run_data_stats
from repro.experiments.density_impact import run_density_impact
from repro.experiments.distributions import run_distributions
from repro.experiments.efficiency import run_efficiency
from repro.experiments.error_dist import run_error_dist
from repro.experiments.runner import (
    ApproachResult,
    ExperimentScale,
    average_results,
    compare_on_slice,
    make_amf_config,
    make_pmf_config,
)
from repro.experiments.scalability import run_scalability
from repro.experiments.spectrum import run_spectrum
from repro.experiments.transform_impact import run_transform_impact

TINY = ExperimentScale(n_users=30, n_services=60, n_slices=3, reruns=1, seed=5)
# Shape assertions (who wins, what decreases) need enough data to rise above
# sampling noise; MID is the smallest scale where they hold across seeds.
MID = ExperimentScale(n_users=60, n_services=120, n_slices=3, reruns=1, seed=5)


class TestRunnerHelpers:
    def test_scale_presets(self):
        assert ExperimentScale.paper().n_services == 4500
        assert ExperimentScale.quick().n_users == 142
        assert ExperimentScale.tiny().reruns == 1

    def test_make_amf_config_attributes(self):
        assert make_amf_config("rt").alpha == -0.007
        assert make_amf_config("throughput").value_max == 7000.0
        with pytest.raises(ValueError):
            make_amf_config("jitter")

    def test_make_pmf_config_ranges(self):
        assert make_pmf_config("rt").value_max == 20.0
        assert make_pmf_config("tp").value_max == 7000.0

    def test_average_results(self):
        runs = [
            {"A": ApproachResult("A", {"MRE": 0.2}, fit_seconds=1.0)},
            {"A": ApproachResult("A", {"MRE": 0.4}, fit_seconds=3.0)},
        ]
        averaged = average_results(runs)
        assert averaged["A"].metrics["MRE"] == pytest.approx(0.3)
        assert averaged["A"].fit_seconds == pytest.approx(2.0)

    def test_average_results_empty_rejected(self):
        with pytest.raises(ValueError):
            average_results([])

    def test_compare_on_slice_approach_filter(self):
        matrix = TINY.dataset("response_time").slice(0)
        results = compare_on_slice(matrix, "response_time", 0.3, rng=0, approaches=["PMF"])
        assert set(results) == {"PMF"}


class TestDataStats:
    def test_structure(self):
        result = run_data_stats(TINY)
        assert result.rt_stats["n_users"] == 30
        assert len(result.pair_series) == 3  # one point per slice
        assert np.all(np.diff(result.user_series) >= 0)  # sorted
        text = result.to_text()
        assert "Fig. 6" in text

    def test_fig2a_pair_is_fully_observed(self):
        result = run_data_stats(TINY)
        data = TINY.dataset("response_time")
        assert data.mask[:, result.pair_user, result.pair_service].all()


class TestDistributions:
    def test_rt_structure(self):
        result = run_distributions(TINY, attribute="response_time", bins=20)
        assert result.raw_centers.shape == (20,)
        assert result.raw_density.sum() <= 1.0 + 1e-9
        assert 0 <= result.transformed_centers.min() <= 1

    def test_transform_reduces_skew(self):
        """The Fig. 7 -> Fig. 8 story."""
        result = run_distributions(TINY, attribute="response_time")
        assert abs(result.skewness_transformed) < abs(result.skewness_raw)

    def test_tp_cutoff(self):
        result = run_distributions(TINY, attribute="throughput")
        assert result.raw_centers.max() < 150.0


class TestSpectrum:
    def test_structure(self):
        result = run_spectrum(TINY, top_k=10)
        assert result.rt_spectrum[0] == pytest.approx(1.0)
        assert result.tp_spectrum[0] == pytest.approx(1.0)
        assert np.all(np.diff(result.rt_spectrum) <= 1e-12)

    def test_low_rank_shape(self):
        """Fig. 9: the tail of the spectrum is far below the head."""
        result = run_spectrum(TINY, top_k=20)
        assert result.rt_spectrum[-1] < 0.35
        assert result.rt_effective_rank <= 15


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self) -> Table1Result:
        return run_table1(
            TINY,
            densities=(0.2, 0.4),
            attributes=("response_time",),
            approaches=["UIPCC", "PMF", "AMF"],
        )

    def test_structure(self, result):
        assert set(result.results["response_time"]) == {0.2, 0.4}
        cell = result.results["response_time"][0.2]
        assert set(cell) == {"UIPCC", "PMF", "AMF"}
        for approach in cell.values():
            assert set(approach.metrics) == {"MAE", "MRE", "NPRE"}

    def test_amf_wins_npre(self, result):
        """The paper's most robust headline: AMF dominates NPRE."""
        for density in (0.2, 0.4):
            cell = result.results["response_time"][density]
            others = min(
                cell[name].metrics["NPRE"] for name in cell if name != "AMF"
            )
            assert cell["AMF"].metrics["NPRE"] < others

    def test_improvement_row(self, result):
        value = result.improvement("response_time", 0.2, "NPRE")
        assert value > 0

    def test_to_text_contains_rows(self, result):
        text = result.to_text()
        assert "AMF" in text and "Improve.(%)" in text and "NPRE@20%" in text


class TestErrorDist:
    def test_structure(self):
        result = run_error_dist(TINY, density=0.3, bins=24)
        assert set(result.densities) == {"UIPCC", "PMF", "AMF"}
        for histogram in result.densities.values():
            assert histogram.shape == (24,)

    def test_fig10_shape(self):
        # Fig. 10 shape: AMF concentrates the most mass near zero error.
        result = run_error_dist(MID, density=0.3, bins=24)
        assert result.central_mass["AMF"] >= max(
            result.central_mass["UIPCC"], result.central_mass["PMF"]
        )


class TestTransformImpact:
    def test_ordering(self):
        result = run_transform_impact(MID, densities=(0.3,))
        assert set(result.mre) == {"PMF", "AMF(alpha=1)", "AMF"}
        # Fig. 11 shape: tuned AMF at least matches the linear variant, and
        # beats PMF outright.
        assert result.mre["AMF"][0] < result.mre["PMF"][0]
        assert result.mre["AMF"][0] <= result.mre["AMF(alpha=1)"][0] * 1.1


class TestDensityImpact:
    def test_error_decreases_with_density(self):
        result = run_density_impact(TINY, densities=(0.05, 0.2, 0.5))
        mre_series = result.metrics["MRE"]
        assert mre_series[-1] < mre_series[0]
        assert set(result.metrics) == {"MAE", "MRE", "NPRE"}


class TestEfficiency:
    def test_structure(self):
        result = run_efficiency(TINY, n_slices=3)
        assert set(result.seconds) == {"UIPCC", "PMF", "AMF (retrain)", "AMF"}
        for series in result.seconds.values():
            assert len(series) == 3
            assert all(s >= 0 for s in series)

    def test_text_rendering(self):
        result = run_efficiency(TINY, n_slices=2)
        assert "Fig. 13" in result.to_text()


class TestScalability:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scalability(
            MID,
            checkpoint_updates=5_000,
            warmup_epochs=10,
            post_join_epochs=10,
        )

    def test_checkpoints_recorded(self, result):
        assert len(result.checkpoints) >= 3
        assert result.join_updates > 0

    def test_new_entities_tracked_only_after_join(self, result):
        for cp in result.checkpoints:
            if cp.updates <= result.join_updates:
                assert np.isnan(cp.mre_new)
            else:
                assert np.isfinite(cp.mre_new)

    def test_fig14_shape(self, result):
        """Existing-entity MRE stays roughly flat; new-entity MRE drops."""
        assert abs(result.existing_drift()) < 0.15
        post = [cp.mre_new for cp in result.checkpoints if np.isfinite(cp.mre_new)]
        assert post[-1] <= post[0] + 0.02  # drops, modulo checkpoint noise

    def test_text_rendering(self, result):
        assert "Fig. 14" in result.to_text()
