"""Tests for the adaptation policies."""

import pytest

from repro.adaptation import (
    SLA,
    AbstractTask,
    GreedyReoptimizePolicy,
    QoSPredictionService,
    ServiceRegistry,
    ThresholdPolicy,
    Workflow,
)
from repro.core import AMFConfig


@pytest.fixture
def world():
    """Registry with 3 'weather' candidates, a bound workflow, and a
    predictor taught that service 1 is fast and services 0/2 are slow."""
    registry = ServiceRegistry()
    for sid in range(3):
        registry.register(sid, "weather")
    workflow = Workflow(name="w", tasks=[AbstractTask("A", "weather")])
    workflow.bind("A", 0)
    predictor = QoSPredictionService(AMFConfig.for_response_time(), rng=0)
    for k in range(200):
        predictor.report_observation(0, 0, 6.0, timestamp=float(k))
        predictor.report_observation(0, 1, 0.3, timestamp=float(k))
        predictor.report_observation(0, 2, 7.0, timestamp=float(k))
    return registry, workflow, predictor


def observe(policy, workflow, registry, predictor, value, now=0.0):
    return policy.on_observation(
        user_id=0,
        workflow=workflow,
        task_name="A",
        observed_value=value,
        now=now,
        registry=registry,
        predictor=predictor,
    )


class TestThresholdPolicy:
    def _policy(self, **kwargs):
        defaults = dict(window=3, min_violations=2, improvement_margin=0.1)
        defaults.update(kwargs)
        return ThresholdPolicy(SLA(attribute="rt", threshold=2.0), **defaults)

    def test_no_action_when_compliant(self, world):
        registry, workflow, predictor = world
        policy = self._policy()
        assert observe(policy, workflow, registry, predictor, 1.0) is None

    def test_single_spike_debounced(self, world):
        registry, workflow, predictor = world
        policy = self._policy()
        assert observe(policy, workflow, registry, predictor, 9.0) is None

    def test_sustained_violation_triggers_switch(self, world):
        registry, workflow, predictor = world
        policy = self._policy()
        observe(policy, workflow, registry, predictor, 9.0)
        action = observe(policy, workflow, registry, predictor, 9.0, now=5.0)
        assert action is not None
        assert action.old_service_id == 0
        assert action.new_service_id == 1  # the fast candidate by prediction
        assert action.decided_at == 5.0
        assert policy.actions_taken == 1

    def test_no_switch_without_predicted_improvement(self, world):
        registry, workflow, predictor = world
        # Current service 1 (the fast one) — no candidate beats it.
        workflow.bind("A", 1)
        policy = self._policy()
        observe(policy, workflow, registry, predictor, 9.0)
        assert observe(policy, workflow, registry, predictor, 9.0) is None

    def test_no_switch_without_candidates(self, world):
        registry, workflow, predictor = world
        for sid in (1, 2):
            registry.deregister(sid)
        policy = self._policy()
        observe(policy, workflow, registry, predictor, 9.0)
        assert observe(policy, workflow, registry, predictor, 9.0) is None

    def test_monitor_resets_after_action(self, world):
        registry, workflow, predictor = world
        policy = self._policy()
        observe(policy, workflow, registry, predictor, 9.0)
        action = observe(policy, workflow, registry, predictor, 9.0)
        assert action is not None
        # Window was reset: a single new violation is not sustained.
        assert observe(policy, workflow, registry, predictor, 9.0) is None

    def test_per_user_monitors_independent(self, world):
        registry, workflow, predictor = world
        policy = self._policy()
        policy.on_observation(0, workflow, "A", 9.0, 0.0, registry, predictor)
        # A different user's first violation must not inherit user 0's count.
        action = policy.on_observation(1, workflow, "A", 9.0, 0.0, registry, predictor)
        assert action is None

    def test_invalid_margin_rejected(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(SLA(attribute="rt", threshold=2.0), improvement_margin=1.5)


class TestGreedyReoptimizePolicy:
    def test_rebinds_to_best_predicted(self, world):
        registry, workflow, predictor = world
        policy = GreedyReoptimizePolicy(period=100.0)
        action = observe(policy, workflow, registry, predictor, 1.0, now=0.0)
        assert action is not None
        assert action.new_service_id == 1

    def test_respects_period(self, world):
        registry, workflow, predictor = world
        policy = GreedyReoptimizePolicy(period=100.0)
        observe(policy, workflow, registry, predictor, 1.0, now=0.0)
        # Still inside the period: no new decision even if the binding moved.
        assert observe(policy, workflow, registry, predictor, 1.0, now=50.0) is None
        assert observe(policy, workflow, registry, predictor, 1.0, now=150.0) is not None

    def test_no_action_when_already_best(self, world):
        registry, workflow, predictor = world
        workflow.bind("A", 1)
        policy = GreedyReoptimizePolicy(period=100.0)
        assert observe(policy, workflow, registry, predictor, 1.0, now=0.0) is None

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            GreedyReoptimizePolicy(period=0.0)
