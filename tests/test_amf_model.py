"""Tests for the AMF model's mechanics: entity management, the sample
store, online updates, expiry, and prediction plumbing.

Learning *quality* is covered separately in test_amf_learning.py.
"""

import numpy as np
import pytest

from repro.core import AdaptiveMatrixFactorization, AMFConfig
from repro.core.amf import _GrowableFactors, _SampleStore
from repro.datasets.schema import QoSRecord


def record(u, s, value, t=0.0):
    return QoSRecord(timestamp=t, user_id=u, service_id=s, value=value)


class TestGrowableFactors:
    def test_rows_initialized_on_demand(self):
        factors = _GrowableFactors(rank=4, init_scale=0.1, rng=np.random.default_rng(0))
        row = factors.row(3)
        assert row.shape == (4,)
        assert len(factors) == 4

    def test_growth_preserves_rows(self):
        factors = _GrowableFactors(rank=3, init_scale=0.1, rng=np.random.default_rng(0))
        first = factors.row(0).copy()
        factors.ensure(200)
        np.testing.assert_array_equal(factors.row(0), first)

    def test_row_is_view(self):
        factors = _GrowableFactors(rank=2, init_scale=0.1, rng=np.random.default_rng(0))
        factors.row(0)[:] = [1.0, 2.0]
        np.testing.assert_array_equal(factors.row(0), [1.0, 2.0])

    def test_reinitialize_changes_row(self):
        factors = _GrowableFactors(rank=8, init_scale=0.1, rng=np.random.default_rng(0))
        before = factors.row(0).copy()
        factors.reinitialize(0)
        assert not np.allclose(factors.row(0), before)

    def test_negative_id_rejected(self):
        factors = _GrowableFactors(rank=2, init_scale=0.1, rng=np.random.default_rng(0))
        with pytest.raises(IndexError):
            factors.row(-1)

    def test_matrix_shape(self):
        factors = _GrowableFactors(rank=5, init_scale=0.1, rng=np.random.default_rng(0))
        factors.ensure(9)
        assert factors.matrix().shape == (10, 5)


class TestSampleStore:
    def test_put_and_get(self):
        store = _SampleStore()
        store.put(1, 2, timestamp=5.0, value=0.7)
        assert store.get(1, 2) == (5.0, 0.7)
        assert len(store) == 1

    def test_put_overwrites_latest(self):
        store = _SampleStore()
        store.put(1, 2, 5.0, 0.7)
        store.put(1, 2, 9.0, 0.9)
        assert store.get(1, 2) == (9.0, 0.9)
        assert len(store) == 1  # still one logical entry

    def test_discard_removes(self):
        store = _SampleStore()
        store.put(1, 2, 5.0, 0.7)
        store.discard(1, 2)
        assert (1, 2) not in store
        assert len(store) == 0

    def test_discard_missing_is_noop(self):
        store = _SampleStore()
        store.discard(9, 9)  # must not raise
        assert len(store) == 0

    def test_swap_remove_keeps_other_keys_pickable(self):
        store = _SampleStore()
        for k in range(5):
            store.put(k, k, 0.0, float(k))
        store.discard(2, 2)
        remaining = {store.random_pick(np.random.default_rng(i))[:2] for i in range(50)}
        assert (2, 2) not in remaining
        assert remaining <= {(0, 0), (1, 1), (3, 3), (4, 4)}

    def test_random_pick_uniformity(self):
        store = _SampleStore()
        for k in range(4):
            store.put(k, 0, 0.0, 1.0)
        rng = np.random.default_rng(0)
        counts = {k: 0 for k in range(4)}
        for __ in range(4000):
            u, *_ = store.random_pick(rng)
            counts[u] += 1
        for count in counts.values():
            assert 800 < count < 1200

    def test_random_pick_empty_raises(self):
        with pytest.raises(LookupError):
            _SampleStore().random_pick(np.random.default_rng(0))


class TestEntityManagement:
    def test_new_entities_registered_on_observe(self):
        model = AdaptiveMatrixFactorization(rng=0)
        model.observe(record(3, 7, 1.0))
        assert model.n_users == 4
        assert model.n_services == 8

    def test_ensure_is_idempotent(self):
        model = AdaptiveMatrixFactorization(rng=0)
        model.ensure_user(2)
        factors_before = model.user_factors()
        model.ensure_user(2)
        np.testing.assert_array_equal(model.user_factors(), factors_before)

    def test_forget_user_resets_state(self):
        model = AdaptiveMatrixFactorization(rng=0)
        for __ in range(20):
            model.observe(record(0, 0, 1.0))
        error_before = model.weights.user_error(0)
        assert error_before < 1.0
        model.forget_user(0)
        assert model.weights.user_error(0) == 1.0
        assert model.n_stored_samples == 0

    def test_forget_service_drops_only_its_samples(self):
        model = AdaptiveMatrixFactorization(rng=0)
        model.observe(record(0, 0, 1.0))
        model.observe(record(0, 1, 1.0))
        model.forget_service(0)
        assert model.n_stored_samples == 1

    def test_predict_unknown_entity_raises(self):
        model = AdaptiveMatrixFactorization(rng=0)
        model.observe(record(0, 0, 1.0))
        with pytest.raises(KeyError):
            model.predict(5, 0)


class TestOnlineUpdate:
    def test_observe_returns_relative_error(self):
        model = AdaptiveMatrixFactorization(rng=0)
        error = model.observe(record(0, 0, 1.0))
        r = model._normalize_scalar(1.0)
        assert error >= 0
        # First prediction is near sigmoid(~0) = 0.5 with tiny random factors.
        assert error == pytest.approx(abs(r - 0.5) / r, rel=0.2)

    def test_update_moves_prediction_toward_observation(self):
        model = AdaptiveMatrixFactorization(rng=0)
        target = 5.0
        first_error = abs(model.observe(record(0, 0, target)))
        for __ in range(400):
            last_error = model.observe(record(0, 0, target))
        assert last_error < first_error / 10
        assert model.predict(0, 0) == pytest.approx(target, rel=0.15)

    def test_updates_applied_counter(self):
        model = AdaptiveMatrixFactorization(rng=0)
        model.observe(record(0, 0, 1.0))
        model.observe(record(0, 1, 1.0))
        assert model.updates_applied == 2

    def test_simultaneous_update_uses_pre_step_vectors(self):
        """Gradients must both be computed from the old (U, S) pair."""
        config = AMFConfig(lambda_u=0.0, lambda_s=0.0, beta=0.0)
        model = AdaptiveMatrixFactorization(config, rng=1)
        model.ensure_user(0)
        model.ensure_service(0)
        u_old = model._user_factors.row(0).copy()
        s_old = model._service_factors.row(0).copy()
        model.observe(record(0, 0, 1.0))
        u_new = model._user_factors.row(0)
        s_new = model._service_factors.row(0)
        # With beta=0 both credence weights stay 0.5; reconstruct the step.
        r = max(model._normalize_scalar(1.0), config.normalized_floor)
        x = float(u_old @ s_old)
        g = 1 / (1 + np.exp(-x))
        residual = np.clip((g - r) * g * (1 - g) / r**2, -config.grad_clip, config.grad_clip)
        step = config.learning_rate * 0.5
        np.testing.assert_allclose(u_new, u_old - step * residual * s_old, atol=1e-12)
        np.testing.assert_allclose(s_new, s_old - step * residual * u_old, atol=1e-12)

    def test_grad_clip_bounds_single_step(self):
        """Even a pathological sample cannot move factors unboundedly."""
        config = AMFConfig(grad_clip=1.0, alpha=1.0)  # alpha=1 -> tiny r
        model = AdaptiveMatrixFactorization(config, rng=0)
        model.ensure_user(0)
        model.ensure_service(0)
        u_before = model._user_factors.row(0).copy()
        model.observe(record(0, 0, 0.001))
        delta = np.abs(model._user_factors.row(0) - u_before)
        s_norm = np.abs(model._service_factors.row(0)).max() + 1.0
        assert delta.max() <= config.learning_rate * 1.0 * (s_norm + 1.0)


class TestExpiry:
    def test_fresh_sample_replayed(self):
        model = AdaptiveMatrixFactorization(rng=0)
        model.observe(record(0, 0, 1.0, t=100.0))
        error = model.replay_step(now=500.0)  # age 400 < 900
        assert error is not None
        assert model.n_stored_samples == 1

    def test_stale_sample_discarded(self):
        model = AdaptiveMatrixFactorization(rng=0)
        model.observe(record(0, 0, 1.0, t=100.0))
        error = model.replay_step(now=2000.0)  # age 1900 >= 900
        assert error is None
        assert model.n_stored_samples == 0

    def test_expiry_boundary_is_inclusive(self):
        config = AMFConfig(expiry_seconds=900.0)
        model = AdaptiveMatrixFactorization(config, rng=0)
        model.observe(record(0, 0, 1.0, t=0.0))
        assert model.replay_step(now=900.0) is None  # age == expiry -> obsolete

    def test_replay_empty_store_raises(self):
        model = AdaptiveMatrixFactorization(rng=0)
        with pytest.raises(LookupError):
            model.replay_step(now=0.0)

    def test_replay_many_counts(self):
        model = AdaptiveMatrixFactorization(rng=0)
        model.observe(record(0, 0, 1.0, t=0.0))
        model.observe(record(0, 1, 1.0, t=1000.0))
        applied, expired, mean_error = model.replay_many(now=1200.0, count=50)
        # The t=0 sample expires on first draw; the t=1000 one keeps applying.
        assert expired == 1
        assert applied >= 1
        assert np.isfinite(mean_error)

    def test_replay_many_empty_store(self):
        model = AdaptiveMatrixFactorization(rng=0)
        applied, expired, mean_error = model.replay_many(now=0.0, count=10)
        assert (applied, expired) == (0, 0)
        assert np.isnan(mean_error)

    def test_replay_many_matches_replay_step_semantics(self):
        a = AdaptiveMatrixFactorization(rng=3)
        b = AdaptiveMatrixFactorization(rng=3)
        for model in (a, b):
            for k in range(10):
                model.observe(record(k % 3, k % 5, 1.0 + k, t=0.0))
        applied, expired, __ = a.replay_many(now=100.0, count=30)
        for __ in range(30):
            b.replay_step(now=100.0)
        assert applied == 30 and expired == 0
        np.testing.assert_allclose(a.user_factors(), b.user_factors())


class TestPrediction:
    def test_predict_matrix_matches_pointwise(self):
        model = AdaptiveMatrixFactorization(rng=0)
        for k in range(30):
            model.observe(record(k % 3, k % 4, 0.5 + 0.1 * k))
        matrix = model.predict_matrix()
        assert matrix.shape == (3, 4)
        for u in range(3):
            for s in range(4):
                assert matrix[u, s] == pytest.approx(model.predict(u, s))

    def test_predictions_within_value_range(self):
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
        for k in range(50):
            model.observe(record(k % 5, k % 7, float(k % 19) + 0.1))
        matrix = model.predict_matrix()
        assert np.all(matrix >= 0.0)
        assert np.all(matrix <= 20.0)

    def test_empty_model_predict_matrix(self):
        model = AdaptiveMatrixFactorization(rng=0)
        assert model.predict_matrix().shape == (0, 0)

    def test_training_error_nan_when_empty(self):
        model = AdaptiveMatrixFactorization(rng=0)
        assert np.isnan(model.training_error())

    def test_training_error_decreases_with_training(self):
        model = AdaptiveMatrixFactorization(rng=0)
        rng = np.random.default_rng(0)
        for __ in range(100):
            model.observe(record(int(rng.integers(5)), int(rng.integers(8)), 1.0))
        early = model.training_error()
        model.replay_many(now=0.0, count=2000)
        assert model.training_error() < early

    def test_determinism_given_seed(self):
        def build():
            model = AdaptiveMatrixFactorization(rng=11)
            for k in range(40):
                model.observe(record(k % 4, k % 6, 0.2 * (k % 9) + 0.1))
            model.replay_many(now=0.0, count=100)
            return model.predict_matrix()

        np.testing.assert_array_equal(build(), build())
