"""Tests for the per-pair time-series predictors (working-service art)."""

import numpy as np
import pytest

from repro.baselines import EWMAPredictor, LastValuePredictor, MovingAveragePredictor
from repro.datasets.schema import QoSRecord


def record(u, s, value, t=0.0):
    return QoSRecord(timestamp=t, user_id=u, service_id=s, value=value)


class TestLastValue:
    def test_returns_latest(self):
        predictor = LastValuePredictor()
        predictor.observe(record(0, 0, 1.0))
        predictor.observe(record(0, 0, 2.5))
        assert predictor.predict(0, 0) == 2.5

    def test_pairs_independent(self):
        predictor = LastValuePredictor()
        predictor.observe(record(0, 0, 1.0))
        predictor.observe(record(0, 1, 9.0))
        assert predictor.predict(0, 0) == 1.0

    def test_cannot_predict_candidates(self):
        """The defining limitation: no history, no forecast."""
        predictor = LastValuePredictor()
        predictor.observe(record(0, 0, 1.0))
        assert not predictor.can_predict(0, 1)
        with pytest.raises(KeyError, match="candidate"):
            predictor.predict(0, 1)


class TestEWMA:
    def test_first_observation_is_estimate(self):
        predictor = EWMAPredictor(beta=0.3)
        predictor.observe(record(0, 0, 4.0))
        assert predictor.predict(0, 0) == 4.0

    def test_ema_formula(self):
        predictor = EWMAPredictor(beta=0.25)
        predictor.observe(record(0, 0, 4.0))
        predictor.observe(record(0, 0, 8.0))
        assert predictor.predict(0, 0) == pytest.approx(0.25 * 8.0 + 0.75 * 4.0)

    def test_converges_to_constant_signal(self):
        predictor = EWMAPredictor(beta=0.3)
        for __ in range(60):
            predictor.observe(record(0, 0, 2.0))
        assert predictor.predict(0, 0) == pytest.approx(2.0)

    def test_tracks_shift(self):
        predictor = EWMAPredictor(beta=0.5)
        predictor.observe(record(0, 0, 1.0))
        for __ in range(20):
            predictor.observe(record(0, 0, 5.0))
        assert predictor.predict(0, 0) == pytest.approx(5.0, rel=0.01)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            EWMAPredictor(beta=1.5)

    def test_no_history_raises(self):
        with pytest.raises(KeyError):
            EWMAPredictor().predict(0, 0)


class TestMovingAverage:
    def test_averages_window(self):
        predictor = MovingAveragePredictor(window=3)
        for value in (1.0, 2.0, 3.0):
            predictor.observe(record(0, 0, value))
        assert predictor.predict(0, 0) == pytest.approx(2.0)

    def test_window_evicts_old(self):
        predictor = MovingAveragePredictor(window=2)
        for value in (10.0, 1.0, 3.0):
            predictor.observe(record(0, 0, value))
        assert predictor.predict(0, 0) == pytest.approx(2.0)  # mean(1, 3)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            MovingAveragePredictor(window=0)

    def test_no_history_raises(self):
        with pytest.raises(KeyError):
            MovingAveragePredictor().predict(0, 0)

    def test_forecast_quality_on_ar1(self):
        """On a mean-reverting series, averaging beats last-value."""
        rng = np.random.default_rng(0)
        mean = 2.0
        series = mean + 0.5 * rng.standard_normal(200)
        last, moving = LastValuePredictor(), MovingAveragePredictor(window=10)
        last_errors, moving_errors = [], []
        for k, value in enumerate(series[:-1]):
            last.observe(record(0, 0, float(value), t=float(k)))
            moving.observe(record(0, 0, float(value), t=float(k)))
            nxt = series[k + 1]
            if k > 10:
                last_errors.append(abs(last.predict(0, 0) - nxt))
                moving_errors.append(abs(moving.predict(0, 0) - nxt))
        assert np.mean(moving_errors) < np.mean(last_errors)
