"""Tests for confidence calibration from the AMF error trackers."""

import numpy as np
import pytest

from repro.core import AdaptiveMatrixFactorization, AMFConfig, StreamTrainer
from repro.datasets import generate_dataset, train_test_split_matrix
from repro.datasets.stream import stream_from_matrix
from repro.metrics.calibration import (
    calibration_report,
    expected_relative_error,
)


@pytest.fixture(scope="module")
def trained():
    data = generate_dataset(n_users=40, n_services=80, n_slices=1, seed=3)
    train, test = train_test_split_matrix(data.slice(0), 0.3, rng=3)
    model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=3)
    model.ensure_user(39)
    model.ensure_service(79)
    StreamTrainer(model).process(stream_from_matrix(train, rng=3))
    rows, cols = test.observed_indices()
    return model, rows, cols, test.values[rows, cols]


class TestExpectedError:
    def test_average_of_trackers(self, trained):
        model, rows, cols, __ = trained
        expected = expected_relative_error(model, rows[:5], cols[:5])
        for k in range(5):
            manual = (
                model.weights.user_error(int(rows[k]))
                + model.weights.service_error(int(cols[k]))
            ) / 2.0
            assert expected[k] == pytest.approx(manual)

    def test_new_entity_has_maximal_expectation(self, trained):
        model, *_ = trained
        model.ensure_user(1000)
        expected = expected_relative_error(
            model, np.array([1000]), np.array([0])
        )
        trained_expected = expected_relative_error(model, np.array([0]), np.array([0]))
        assert expected[0] > trained_expected[0]

    def test_shape_mismatch_rejected(self, trained):
        model, *_ = trained
        with pytest.raises(ValueError):
            expected_relative_error(model, np.array([0, 1]), np.array([0]))


class TestCalibrationReport:
    def test_structure(self, trained):
        model, rows, cols, actual = trained
        report = calibration_report(model, rows, cols, actual, n_buckets=4)
        assert report.counts.sum() == rows.size
        assert len(report.realized_median) == 4
        assert "calibration" in report.to_text().lower()

    def test_confidence_is_informative(self, trained):
        """Expected error must rank-correlate positively with realized
        error — the trackers carry real signal about prediction quality."""
        model, rows, cols, actual = trained
        report = calibration_report(model, rows, cols, actual, n_buckets=5)
        assert report.rank_correlation > 0.05

    def test_invalid_buckets(self, trained):
        model, rows, cols, actual = trained
        with pytest.raises(ValueError):
            calibration_report(model, rows, cols, actual, n_buckets=1)

    def test_too_few_pairs_rejected(self, trained):
        model, rows, cols, actual = trained
        with pytest.raises(ValueError, match="at least"):
            calibration_report(model, rows[:2], cols[:2], actual[:2], n_buckets=5)
