"""Crash-recovery and supervision tests.

Three layers:

* exact recovery — checkpoint + WAL-tail replay reproduces the
  uninterrupted model bit-for-bit (property-style over seeds and crash
  points, using the server's real ingestion path without HTTP);
* server-level kill-and-restart through HTTP, via the fault-injection
  harness, with and without a hostile stream;
* trainer supervision — a crashed replay thread is restarted with the
  failure visible in ``/status`` and ``/health``, and ``stop()`` leaves a
  consistent state even when the join times out.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import (
    AdaptiveMatrixFactorization,
    AMFConfig,
    BackgroundTrainer,
    ConcurrentModel,
    TrainerSupervisor,
)
from repro.datasets.schema import QoSRecord
from repro.robustness import GateConfig
from repro.server import PredictionClient, PredictionServer
from repro.simulation import FaultConfig, run_crash_recovery


def make_stream(n, seed, n_users=20, n_services=40):
    """Entity spaces deliberately larger than the stream can saturate early:
    new users/services keep appearing late, so recovered runs must draw
    their init vectors from the *restored* RNG stream to stay exact."""
    rng = np.random.default_rng(seed)
    return [
        QoSRecord(
            timestamp=float(k),
            user_id=int(rng.integers(n_users)),
            service_id=int(rng.integers(n_services)),
            value=float(rng.uniform(0.05, 5.0)),
        )
        for k in range(n)
    ]


def ingest(server, records):
    """Drive the server's real ingestion path (WAL + checkpointing) without
    paying for HTTP round-trips."""
    for record in records:
        server._handle_observation(
            {
                "timestamp": record.timestamp,
                "user_id": record.user_id,
                "service_id": record.service_id,
                "value": record.value,
            }
        )


class TestExactRecovery:
    """Recovered model == uninterrupted model, exactly — the durability
    contract, checked at every layer of model state."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("crash_after", [0, 5, 52, 100])
    def test_checkpoint_plus_wal_replay_is_exact(self, tmp_path, seed, crash_after):
        records = make_stream(100, seed)
        args = dict(rng=seed, background_replay=False, checkpoint_interval=13)

        server = PredictionServer(data_dir=str(tmp_path), **args)
        ingest(server, records[:crash_after])
        server.kill()  # no final checkpoint — the kill -9 state

        recovered = PredictionServer(data_dir=str(tmp_path), **args)
        info = recovered.recovery
        assert info["checkpoint_seq"] + info["wal_replayed"] == crash_after
        assert info["checkpoint_seq"] == (crash_after // 13) * 13
        assert info["torn_lines"] == 0
        ingest(recovered, records[crash_after:])

        baseline = PredictionServer(**args)
        ingest(baseline, records)

        assert recovered.model.updates_applied == baseline.model.updates_applied
        assert recovered.model.n_stored_samples == baseline.model.n_stored_samples
        np.testing.assert_array_equal(
            recovered.model.user_factors(), baseline.model.user_factors()
        )
        np.testing.assert_array_equal(
            recovered.model.service_factors(), baseline.model.service_factors()
        )
        np.testing.assert_array_equal(
            recovered.model.predict_matrix(), baseline.model.predict_matrix()
        )
        recovered.kill()

    def test_double_crash(self, tmp_path):
        """Crash, recover, crash again before any new checkpoint, recover:
        no observation lost or duplicated across either boundary."""
        records = make_stream(90, seed=3)
        args = dict(rng=3, background_replay=False, checkpoint_interval=40)

        first = PredictionServer(data_dir=str(tmp_path), **args)
        ingest(first, records[:50])
        first.kill()
        second = PredictionServer(data_dir=str(tmp_path), **args)
        ingest(second, records[50:70])
        second.kill()
        third = PredictionServer(data_dir=str(tmp_path), **args)
        ingest(third, records[70:])

        baseline = PredictionServer(**args)
        ingest(baseline, records)
        assert third.model.updates_applied == baseline.model.updates_applied
        np.testing.assert_array_equal(
            third.model.predict_matrix(), baseline.model.predict_matrix()
        )
        third.kill()

    def test_graceful_stop_checkpoints_everything(self, tmp_path):
        """After stop(), restart replays nothing: the final checkpoint
        covers the whole WAL."""
        records = make_stream(30, seed=4)
        args = dict(rng=4, background_replay=False, checkpoint_interval=1000)
        server = PredictionServer(data_dir=str(tmp_path), **args)
        ingest(server, records)
        server.stop()
        restarted = PredictionServer(data_dir=str(tmp_path), **args)
        assert restarted.recovery["wal_replayed"] == 0
        assert restarted.recovery["checkpoint_seq"] == 30
        assert restarted.model.updates_applied == server.model.updates_applied
        restarted.kill()

    def test_recovery_seeds_fallback_state(self, tmp_path):
        """Degraded-mode running means survive a crash too (rebuilt from the
        recovered sample store)."""
        args = dict(rng=0, background_replay=False, checkpoint_interval=10)
        server = PredictionServer(data_dir=str(tmp_path), **args)
        ingest(server, [QoSRecord(timestamp=1.0, user_id=0, service_id=0, value=4.0)])
        server.kill()
        recovered = PredictionServer(data_dir=str(tmp_path), **args)
        assert recovered.fallback.observations == 1
        result = recovered.fallback.predict(0, 999)
        assert result.source == "user_mean"
        assert result.value == pytest.approx(4.0)
        recovered.kill()


class TestServerCrashRecovery:
    """End-to-end over HTTP via the fault-injection harness."""

    def test_kill_and_restart_matches_baseline(self, tmp_path):
        records = make_stream(120, seed=0)
        report = run_crash_recovery(
            records, crash_after=70, data_dir=str(tmp_path), checkpoint_interval=25
        )
        assert report.matches, report.summary()
        assert report.detail["updates_applied"] == 120
        assert report.detail["recovery"]["checkpoint_seq"] == 50
        assert report.detail["recovery"]["wal_replayed"] == 20

    def test_recovery_under_hostile_stream(self, tmp_path):
        """Drops/duplicates/reorders/corruption before the crash change the
        stream, not the recovery guarantee: both runs see the same mangled
        stream and still agree exactly."""
        records = make_stream(120, seed=1)
        report = run_crash_recovery(
            records,
            crash_after=60,
            data_dir=str(tmp_path),
            checkpoint_interval=20,
            faults=FaultConfig(
                drop_rate=0.1, duplicate_rate=0.05, reorder_rate=0.05,
                corrupt_rate=0.05, corrupt_factor=100.0,
            ),
        )
        assert report.matches, report.summary()

    def test_crash_before_first_checkpoint(self, tmp_path):
        report = run_crash_recovery(
            records=make_stream(40, seed=2),
            crash_after=15,
            data_dir=str(tmp_path),
            checkpoint_interval=1000,  # never reached: recovery is WAL-only
        )
        assert report.matches, report.summary()
        assert report.detail["recovery"]["checkpoint_seq"] == 0
        assert report.detail["recovery"]["wal_replayed"] == 15

    def test_recovery_with_gate_active_is_bit_exact(self, tmp_path):
        """The gate is deterministic state: a kill mid-stream with the
        outlier gate on (and a corrupting stream exercising every decision
        path) must still reproduce the baseline decisions, model, and a
        byte-identical checkpoint archive."""
        records = make_stream(120, seed=5)
        report = run_crash_recovery(
            records,
            crash_after=70,
            data_dir=str(tmp_path / "crash"),
            checkpoint_interval=25,
            faults=FaultConfig(corrupt_rate=0.1, corrupt_factor=500.0),
            server_kwargs=dict(gate=GateConfig(warmup=4)),
            baseline_data_dir=str(tmp_path / "baseline"),
        )
        assert report.matches, report.summary()
        digests = report.detail["checkpoint_digests"]
        assert digests["recovered"] == digests["baseline"]
        # The corrupting stream actually drove the gate off the admit path.
        counts = report.detail["gate_counts"]
        assert counts["quarantined"] > 0
        assert counts["admitted"] > 0


def _flaky_replay(model, crashes):
    """Wrap a ConcurrentModel's replay so its first ``crashes`` calls die —
    the moral equivalent of a faulty retained sample poisoning the replay
    batch."""
    original = model.replay_many
    remaining = {"n": crashes}

    def replay_many(now, count, kernel=None):
        if remaining["n"] > 0:
            remaining["n"] -= 1
            raise ValueError("corrupt sample in replay batch")
        return original(now, count, kernel=kernel)

    model.replay_many = replay_many


def _wait_for(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestTrainerSupervision:
    def _shared_model(self):
        model = ConcurrentModel(AdaptiveMatrixFactorization(rng=0))
        for k in range(20):
            model.observe(
                QoSRecord(timestamp=float(k), user_id=k % 3, service_id=k % 5,
                          value=1.0)
            )
        return model

    def test_supervisor_restarts_crashed_trainer(self):
        model = self._shared_model()
        _flaky_replay(model, crashes=2)
        trainer = BackgroundTrainer(model)
        supervisor = TrainerSupervisor(
            trainer, check_interval=0.01, backoff_base=0.01, backoff_max=0.05
        )
        with supervisor:
            assert _wait_for(
                lambda: trainer.crash_count == 2
                and trainer.running
                and trainer.replays_applied > 0
            )
            health = supervisor.health()
        assert health["running"]
        assert health["supervised"]
        assert health["crashes"] == 2
        assert health["restarts"] >= 2
        assert "corrupt sample" in health["last_failure"]

    def test_stop_does_not_resurrect(self):
        model = self._shared_model()
        _flaky_replay(model, crashes=1)
        supervisor = TrainerSupervisor(
            BackgroundTrainer(model), check_interval=0.01, backoff_base=0.01
        )
        supervisor.start()
        assert _wait_for(lambda: supervisor.restarts >= 1)
        supervisor.stop()
        assert not supervisor.running
        assert not supervisor.trainer.running
        time.sleep(0.1)  # were the monitor still alive, it could restart here
        assert not supervisor.trainer.running

    def test_unsupervised_crash_is_recorded_but_not_restarted(self):
        model = self._shared_model()
        _flaky_replay(model, crashes=1)
        trainer = BackgroundTrainer(model)
        trainer.start()
        assert _wait_for(lambda: trainer.crash_count == 1 and not trainer.running)
        assert isinstance(trainer.failure, ValueError)
        trainer.stop()  # cleans up the dead thread reference

    def test_stop_timeout_leaves_consistent_state(self):
        """A join timeout raises, but the trainer is still 'stopped': running
        is False and repeated stop() is a no-op (the former behavior left
        ``_thread`` set, so the object looked half-running forever)."""
        model = self._shared_model()
        original = model.replay_many
        release = threading.Event()

        def stuck_replay(now, count, kernel=None):
            release.wait(5.0)
            return original(now, count, kernel=kernel)

        model.replay_many = stuck_replay
        trainer = BackgroundTrainer(model)
        trainer.start()
        assert _wait_for(lambda: trainer.running)
        time.sleep(0.05)  # let the worker enter the stuck replay call
        with pytest.raises(TimeoutError, match="abandoned"):
            trainer.stop(timeout=0.05)
        assert not trainer.running
        trainer.stop()  # repeated stop: no-op, no exception
        trainer.stop()
        release.set()

    def test_stop_before_start_is_noop(self):
        trainer = BackgroundTrainer(self._shared_model())
        trainer.stop()
        assert not trainer.running

    def test_restart_after_stop(self):
        trainer = BackgroundTrainer(self._shared_model())
        trainer.start()
        trainer.stop()
        trainer.start()
        assert trainer.running
        trainer.stop()


class TestTrainerCrashOverHTTP:
    def test_crash_surfaces_in_status_and_health_and_recovers(self):
        """Acceptance scenario: a trainer-thread crash is auto-restarted,
        and the failure is visible through /status and /health."""
        server = PredictionServer(rng=0, background_replay=True, supervise=True)
        # Fast supervision for test time; production defaults are larger.
        server.supervisor = TrainerSupervisor(
            server.trainer, check_interval=0.01, backoff_base=0.01
        )
        _flaky_replay(server.model, crashes=1)
        with server:
            client = PredictionClient(server.address)
            for k in range(10):
                client.report_observation(k % 2, k % 3, 1.0, float(k))
            assert _wait_for(
                lambda: server.trainer.crash_count >= 1 and server.trainer.running
            )
            status = client.status()["trainer"]
            assert status["supervised"]
            assert status["crashes"] >= 1
            assert status["restarts"] >= 1
            assert status["running"]
            assert "corrupt sample" in status["last_failure"]
            health = client.health()
            assert health["status"] == "ok"  # restarted: ready again
            assert health["checks"]["trainer_alive"]
            assert health["trainer"]["crashes"] >= 1
            # And the restarted trainer actually trains.
            assert _wait_for(lambda: server.trainer.replays_applied > 0)

    def test_dead_unsupervised_trainer_fails_health(self):
        server = PredictionServer(rng=0, background_replay=True, supervise=False)
        _flaky_replay(server.model, crashes=10**9)  # every replay dies
        with server:
            client = PredictionClient(server.address)
            for k in range(10):
                client.report_observation(k % 2, k % 3, 1.0, float(k))
            assert _wait_for(
                lambda: server.trainer.crash_count >= 1 and not server.trainer.running
            )
            health = client.health()
            assert health["status"] == "unavailable"
            assert not health["checks"]["trainer_alive"]
            assert health["trainer"]["crashes"] >= 1
