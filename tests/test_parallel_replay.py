"""Tests for the multi-core replay engine (:mod:`repro.core.parallel`).

The engine's contract is *bit-exact* parity with the single-core vectorized
kernel: entity partitioning makes per-row block computations independent,
and the parent replicates the kernel's scalar fallback for narrow blocks,
so the trained factors, credence trackers, update counters, and RNG stream
must be identical — not approximately, identically.  These assertions are
hardware-independent (they hold on one core or sixty-four), which is what
lets CI enforce the parity half of the acceptance criteria everywhere.
"""

import numpy as np
import pytest

from repro.core import (
    AdaptiveMatrixFactorization,
    AMFConfig,
    ParallelReplayEngine,
    StreamTrainer,
)
from repro.datasets.schema import QoSRecord


def _seeded_model(seed=11, n_samples=600, n_users=40, n_services=60):
    model = AdaptiveMatrixFactorization(
        AMFConfig.for_response_time(kernel="vectorized"), rng=seed
    )
    rng = np.random.default_rng(seed)
    users = rng.integers(0, n_users, n_samples)
    services = rng.integers(0, n_services, n_samples)
    values = rng.random(n_samples) * 19.0 + 0.05
    for k in range(n_samples):
        model.observe(
            QoSRecord(
                timestamp=0.0,
                user_id=int(users[k]),
                service_id=int(services[k]),
                value=float(values[k]),
            )
        )
    return model


def _assert_models_identical(reference, candidate):
    np.testing.assert_array_equal(
        reference._user_factors.view(), candidate._user_factors.view()
    )
    np.testing.assert_array_equal(
        reference._service_factors.view(), candidate._service_factors.view()
    )
    np.testing.assert_array_equal(
        reference.weights.user_error_snapshot(),
        candidate.weights.user_error_snapshot(),
    )
    np.testing.assert_array_equal(
        reference.weights.service_error_snapshot(),
        candidate.weights.service_error_snapshot(),
    )
    assert reference.updates_applied == candidate.updates_applied
    assert (
        reference._rng.bit_generator.state == candidate._rng.bit_generator.state
    ), "kernels consumed different RNG draws"


class TestBitExactParity:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_parallel_matches_vectorized_bit_for_bit(self, n_workers):
        single = _seeded_model()
        multi = _seeded_model()
        with ParallelReplayEngine(multi, n_workers=n_workers):
            for __ in range(6):
                applied_s, expired_s, error_s = single.replay_many(
                    0.0, 600, kernel="vectorized"
                )
                applied_p, expired_p, error_p = multi.replay_many(
                    0.0, 600, kernel="parallel"
                )
                assert applied_s == applied_p
                assert expired_s == expired_p
                # Mean error aggregates per-worker partial sums, so only
                # the summation order may differ.
                assert error_s == pytest.approx(error_p, rel=1e-9)
        _assert_models_identical(single, multi)

    def test_narrow_blocks_take_the_scalar_path_exactly(self):
        """A tiny entity universe forces blocks below the vectorization
        threshold; parity then rests on the parent's scalar replication."""
        single = _seeded_model(seed=5, n_samples=120, n_users=3, n_services=4)
        multi = _seeded_model(seed=5, n_samples=120, n_users=3, n_services=4)
        with ParallelReplayEngine(multi, n_workers=2):
            for __ in range(6):
                single.replay_many(0.0, 120, kernel="vectorized")
                multi.replay_many(0.0, 120, kernel="parallel")
        _assert_models_identical(single, multi)

    def test_expiry_is_identical(self):
        single = _seeded_model()
        multi = _seeded_model()
        expiry = single.config.expiry_seconds
        with ParallelReplayEngine(multi, n_workers=2):
            result_s = single.replay_many(expiry + 1.0, 300, kernel="vectorized")
            result_p = multi.replay_many(expiry + 1.0, 300, kernel="parallel")
        assert result_s[0] == result_p[0] == 0
        assert result_s[1] == result_p[1] > 0
        assert single.n_stored_samples == multi.n_stored_samples
        _assert_models_identical(single, multi)

    def test_versions_bumped_like_vectorized(self):
        single = _seeded_model()
        multi = _seeded_model()
        with ParallelReplayEngine(multi, n_workers=2):
            single.replay_many(0.0, 400, kernel="vectorized")
            multi.replay_many(0.0, 400, kernel="parallel")
        np.testing.assert_array_equal(
            single._user_factors._versions[: single.n_users],
            multi._user_factors._versions[: multi.n_users],
        )
        np.testing.assert_array_equal(
            single._service_factors._versions[: single.n_services],
            multi._service_factors._versions[: multi.n_services],
        )

    def test_stream_trainer_accepts_parallel_kernel(self):
        single = _seeded_model()
        multi = _seeded_model()
        reference = StreamTrainer(single, kernel="vectorized", max_epochs=8)
        with ParallelReplayEngine(multi, n_workers=2):
            trainer = StreamTrainer(multi, kernel="parallel", max_epochs=8)
            report_s = reference.replay_until_converged(0.0)
            report_p = trainer.replay_until_converged(0.0)
        assert report_s.replays == report_p.replays
        assert report_s.epochs == report_p.epochs
        _assert_models_identical(single, multi)


class TestEngineLifecycle:
    def test_kernel_requires_attached_engine(self):
        model = _seeded_model()
        with pytest.raises(RuntimeError, match="ParallelReplayEngine"):
            model.replay_many(0.0, 10, kernel="parallel")

    def test_one_engine_per_model(self):
        model = _seeded_model()
        with ParallelReplayEngine(model, n_workers=1):
            with pytest.raises(RuntimeError, match="already has"):
                ParallelReplayEngine(model, n_workers=1)

    def test_close_is_idempotent_and_detaches(self):
        model = _seeded_model()
        engine = ParallelReplayEngine(model, n_workers=2)
        assert model._parallel_engine is engine
        engine.close()
        engine.close()
        assert engine.closed
        assert model._parallel_engine is None
        with pytest.raises(RuntimeError, match="closed"):
            engine._replay_batch(0.0, 10)
        # A fresh engine can attach after close.
        with ParallelReplayEngine(model, n_workers=1) as replacement:
            applied, __, error = model.replay_many(0.0, 64, kernel="parallel")
        assert applied == 64
        assert np.isfinite(error)
        assert replacement.closed

    def test_invalid_arguments_rejected(self):
        model = _seeded_model()
        with pytest.raises(ValueError, match="n_workers"):
            ParallelReplayEngine(model, n_workers=0)
        with pytest.raises(ValueError, match="barrier_timeout"):
            ParallelReplayEngine(model, n_workers=1, barrier_timeout=0.0)

    def test_replay_many_wrapper(self):
        model = _seeded_model()
        with ParallelReplayEngine(model, n_workers=2) as engine:
            applied, expired, error = engine.replay_many(0.0, 128)
        assert applied == 128
        assert expired == 0
        assert np.isfinite(error)

    def test_empty_store_short_circuits(self):
        model = AdaptiveMatrixFactorization(
            AMFConfig.for_response_time(kernel="vectorized"), rng=0
        )
        with ParallelReplayEngine(model, n_workers=2):
            applied, expired, error = model.replay_many(0.0, 32, kernel="parallel")
        assert applied == 0
        assert expired == 0
        assert np.isnan(error)

    def test_growth_mid_stream_reallocates_buffers(self):
        """New entities after the first parallel batch force shared-buffer
        reallocation; parity must survive the segment swap."""
        single = _seeded_model(seed=7, n_samples=200, n_users=10, n_services=12)
        multi = _seeded_model(seed=7, n_samples=200, n_users=10, n_services=12)
        with ParallelReplayEngine(multi, n_workers=2):
            single.replay_many(0.0, 200, kernel="vectorized")
            multi.replay_many(0.0, 200, kernel="parallel")
            rng = np.random.default_rng(99)
            for k in range(200):
                record = QoSRecord(
                    timestamp=0.0,
                    user_id=int(rng.integers(0, 200)),
                    service_id=int(rng.integers(0, 300)),
                    value=float(rng.random() * 10 + 0.1),
                )
                single.observe(record)
                multi.observe(record)
            single.replay_many(0.0, 400, kernel="vectorized")
            multi.replay_many(0.0, 400, kernel="parallel")
        _assert_models_identical(single, multi)


class TestWorkerMetrics:
    def test_per_worker_steps_are_recorded(self):
        from repro.observability import get_registry, parse_prometheus_text

        model = _seeded_model()
        with ParallelReplayEngine(model, n_workers=2):
            model.replay_many(0.0, 400, kernel="parallel")
        families = parse_prometheus_text(get_registry().render())
        assert "qos_replay_worker_steps_total" in families
        samples = families["qos_replay_worker_steps_total"]["samples"]
        assert sum(samples.values()) > 0
