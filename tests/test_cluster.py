"""Tests for the sharded-fleet layer: rendezvous placement stability,
the version-stamped placement table, router fan-out/merge, and error
containment — a dead shard answers as a structured 503 and a standby's
fenced 409 redirects inside the router, so neither trips a breaker."""

import socket

import pytest

from repro.cluster import (
    ClusterClient,
    ClusterRouter,
    PlacementTable,
    ShardSpec,
    rendezvous_score,
)
from repro.server import (
    PredictionClient,
    PredictionServer,
    ReplicationConfig,
    RetryableServiceError,
    TerminalServiceError,
)
from repro.simulation.faults import check_metrics_exposition

SERVER_ARGS = dict(rng=0, background_replay=False)

N_KEYS = 2000


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def specs(names):
    return [ShardSpec(name=n, addresses=(("127.0.0.1", 1),)) for n in names]


def owners(table, kind="user", n=N_KEYS):
    return {k: table.owner_of(kind, k).name for k in range(n)}


class TestRendezvous:
    def test_score_is_deterministic_and_key_sensitive(self):
        assert rendezvous_score("user", 7, "s0") == rendezvous_score(
            "user", 7, "s0"
        )
        # Kind, id, and shard name all feed the hash.
        baseline = rendezvous_score("user", 7, "s0")
        assert rendezvous_score("service", 7, "s0") != baseline
        assert rendezvous_score("user", 8, "s0") != baseline
        assert rendezvous_score("user", 7, "s1") != baseline

    def test_every_key_has_exactly_one_owner(self):
        table = PlacementTable(specs(["a", "b", "c", "d", "e"]))
        for kind in ("user", "service"):
            for key in range(500):
                owner = table.owner_of(kind, key)
                # The owner is the unique argmax over active shards.
                best = [
                    s.name
                    for s in table.active
                    if rendezvous_score(kind, key, s.name)
                    == rendezvous_score(kind, key, owner.name)
                ]
                assert best == [owner.name]

    def test_ownership_is_roughly_balanced(self):
        table = PlacementTable(specs(["a", "b", "c", "d"]))
        counts = {}
        for name in owners(table).values():
            counts[name] = counts.get(name, 0) + 1
        for name in table.names:
            # Expected 500 of 2000 per shard; allow generous skew.
            assert 300 < counts[name] < 700, counts

    def test_adding_a_shard_moves_about_one_over_n_keys(self):
        before = PlacementTable(specs(["a", "b", "c", "d"]))
        after = before.with_shard(
            ShardSpec(name="e", addresses=(("127.0.0.1", 1),))
        )
        old, new = owners(before), owners(after)
        moved = [k for k in old if old[k] != new[k]]
        # Expected fraction 1/5 = 0.2 of the keyspace.
        assert 0.12 < len(moved) / N_KEYS < 0.30, len(moved)
        # Rendezvous only ever moves keys *onto* the new shard.
        assert all(new[k] == "e" for k in moved)

    def test_removing_a_shard_moves_only_its_keys(self):
        before = PlacementTable(specs(["a", "b", "c", "d", "e"]))
        after = before.without_shard("c")
        old, new = owners(before), owners(after)
        for key in old:
            if old[key] == "c":
                assert new[key] != "c"
            else:
                # Survivors' rankings are untouched by the removal.
                assert new[key] == old[key]

    def test_draining_moves_keys_like_removal_but_keeps_reachability(self):
        before = PlacementTable(specs(["a", "b", "c"]))
        drained = before.draining_shard("b")
        assert drained.version == before.version + 1
        assert drained.shard("b").draining
        assert "b" not in {s.name for s in drained.active}
        removed = before.without_shard("b")
        # Draining and removal induce the identical ownership map.
        assert owners(drained) == owners(removed)
        # ... but the drained shard is still in the table to route to.
        assert "b" in drained.names


class TestPlacementTable:
    def test_round_trips_through_dict(self):
        table = PlacementTable(
            [
                ShardSpec(name="a", addresses=(("10.0.0.1", 8301),)),
                ShardSpec(
                    name="b",
                    addresses=(("10.0.0.2", 8301), ("10.0.0.3", 8301)),
                    draining=True,
                ),
            ],
            version=7,
        )
        clone = PlacementTable.from_dict(table.to_dict())
        assert clone.version == 7
        assert clone.names == table.names
        assert clone.shard("b").addresses == (("10.0.0.2", 8301), ("10.0.0.3", 8301))
        assert clone.shard("b").draining
        assert owners(clone, n=200) == owners(table, n=200)

    def test_rejects_bad_tables(self):
        with pytest.raises(ValueError):
            PlacementTable([])
        with pytest.raises(ValueError):
            PlacementTable(specs(["a", "a"]))
        with pytest.raises(ValueError):
            PlacementTable(specs(["a"]), version=0)
        with pytest.raises(ValueError):
            PlacementTable(
                [ShardSpec(name="a", draining=True)]
            )  # no active shard left
        with pytest.raises(ValueError):
            PlacementTable.from_dict({"shards": []})

    def test_evolution_bumps_version_and_is_pure(self):
        table = PlacementTable(specs(["a", "b"]))
        grown = table.with_shard(ShardSpec(name="c"))
        assert (table.version, grown.version) == (1, 2)
        assert table.names == ["a", "b"]  # original untouched
        assert grown.without_shard("c").version == 3
        with pytest.raises(ValueError):
            table.with_shard(ShardSpec(name="b"))
        with pytest.raises(KeyError):
            table.without_shard("zz")
        with pytest.raises(KeyError):
            table.draining_shard("zz")


class TestPlacementEdgeCases:
    def test_draining_the_last_active_shard_is_rejected(self):
        table = PlacementTable(specs(["a", "b"]))
        drained = table.draining_shard("a")
        with pytest.raises(ValueError):
            drained.draining_shard("b")  # would leave no active shard
        with pytest.raises(ValueError):
            PlacementTable(specs(["a"])).draining_shard("a")

    def test_drain_undrain_round_trip_restores_ownership(self):
        table = PlacementTable(specs(["a", "b", "c"]))
        restored = table.draining_shard("b").draining_shard("b", False)
        assert restored.version == table.version + 2
        assert not restored.shard("b").draining
        # The round trip is ownership-neutral: every key goes home.
        assert owners(restored) == owners(table)


@pytest.fixture()
def fleet():
    """Three in-process shards behind a running router."""
    servers = [PredictionServer(**SERVER_ARGS) for _ in range(3)]
    for server in servers:
        server.start()
    table = PlacementTable(
        [
            ShardSpec(name=f"s{k}", addresses=(server.address,))
            for k, server in enumerate(servers)
        ]
    )
    router = ClusterRouter(table)
    router.start()
    client = ClusterClient(router.address, retries=0)
    try:
        yield servers, table, router, client
    finally:
        client.close()
        router.stop()
        for server in servers:
            server.stop()


class TestRouterFleet:
    def test_observations_land_on_the_owning_shard(self, fleet):
        servers, table, router, client = fleet
        expected = {f"s{k}": 0 for k in range(3)}
        for user_id in range(12):
            client.report_observation(user_id, user_id % 5, 0.5, float(user_id))
            expected[table.owner_of("user", user_id).name] += 1
        for name, count in expected.items():
            handled = router.shard_client(name).status()[
                "observations_handled"
            ]
            assert handled == count, (name, handled, count)

    def test_batch_prediction_merges_home_shard_credence(self, fleet):
        servers, table, router, client = fleet
        for k in range(30):
            client.report_observation(k % 6, k % 8, 0.3 + 0.1 * (k % 4), float(k))
        detail = client.predict_candidates_detailed(2, [0, 1, 2, 3, 4])
        assert set(detail["predictions"]) == {0, 1, 2, 3, 4}
        assert set(detail["credence"]) == {0, 1, 2, 3, 4}
        assert detail["credence_partial"] == []
        assert detail["shard"] == table.owner_of("user", 2).name
        assert detail["placement_version"] == table.version

    def test_rank_candidates_orders_by_prediction(self, fleet):
        servers, table, router, client = fleet
        for k in range(40):
            client.report_observation(k % 6, k % 8, 0.3 + 0.1 * (k % 4), float(k))
        ranked = client.rank_candidates(1, [0, 1, 2, 3, 4, 5], k=3)
        assert len(ranked["ranked"]) == 3
        values = [entry["prediction"] for entry in ranked["ranked"]]
        assert values == sorted(values)  # prefer="min"
        for entry in ranked["ranked"]:
            assert "credence" in entry and "source" in entry

    def test_health_and_aggregated_metrics(self, fleet):
        servers, table, router, client = fleet
        client.report_observation(0, 0, 0.5, 0.0)
        health = client.health()
        assert health["status"] == "ok"
        assert health["shards_ready"] == health["shards_total"] == 3
        ok, info = check_metrics_exposition(client.metrics())
        assert ok, info
        # Every sample is attributed to its shard.
        assert 'shard="s0"' in client.metrics()

    def test_stale_placement_is_rejected_with_409(self, fleet):
        servers, table, router, client = fleet
        with pytest.raises(TerminalServiceError) as excinfo:
            client.update_placement(table)  # same version: not newer
        assert excinfo.value.status == 409
        assert excinfo.value.body["code"] == "stale_placement"
        assert router.placement.version == table.version

    def test_drain_rebalances_new_traffic_off_the_shard(self, fleet):
        servers, table, router, client = fleet
        drained_name = table.owner_of("user", 0).name
        client.update_placement(table.draining_shard(drained_name))
        assert client.placement().version == table.version + 1
        body_owner = client.owner_of("user", 0)
        assert body_owner.name != drained_name

    def test_lower_version_install_is_stale(self, fleet):
        servers, table, router, client = fleet
        client.update_placement(table.draining_shard("s2"))
        # Re-offering the original (now older) table must be refused.
        with pytest.raises(TerminalServiceError) as excinfo:
            client.update_placement(table)
        assert excinfo.value.status == 409
        assert excinfo.value.body["code"] == "stale_placement"
        assert router.placement.version == table.version + 1

    def test_refresh_failures_back_off_with_jitter(self, fleet):
        servers, table, router, client = fleet
        client.placement()  # prime the cache
        attempts = []
        healthy_placement = client.placement

        def failing_placement(refresh=False):
            attempts.append(refresh)
            raise RetryableServiceError("placement endpoint down")

        client.placement = failing_placement
        client._note_version(table.version + 1)
        assert attempts == [True]
        assert client._refresh_failures == 1
        gate = client._refresh_not_before
        assert gate > 0.0
        # Inside the backoff window the next advertisement is ignored —
        # the cached table keeps serving instead of hammering the router.
        client._note_version(table.version + 1)
        assert attempts == [True]
        # Past the gate it retries, and the failure count keeps growing.
        client._refresh_not_before = 0.0
        client._note_version(table.version + 1)
        assert attempts == [True, True]
        assert client._refresh_failures == 2
        # One successful refresh resets the backoff entirely.
        client.placement = healthy_placement
        client._refresh_not_before = 0.0
        client._note_version(table.version + 1)
        assert client._refresh_failures == 0
        assert client._refresh_not_before == 0.0


class TestRouterErrorContainment:
    def test_dead_shard_is_a_structured_503_not_a_breaker_trip(self, tmp_path):
        live = PredictionServer(**SERVER_ARGS)
        live.start()
        table = PlacementTable(
            [
                ShardSpec(name="live", addresses=(live.address,)),
                ShardSpec(name="dead", addresses=(("127.0.0.1", free_port()),)),
            ]
        )
        router = ClusterRouter(table)
        router.start()
        # A breaker this tight would open on the very first transport
        # failure — the point is that it never sees one.
        client = PredictionClient(
            router.address, retries=0, breaker_threshold=1
        )
        try:
            dead_user = next(
                u for u in range(500)
                if table.owner_of("user", u).name == "dead"
            )
            live_user = next(
                u for u in range(500)
                if table.owner_of("user", u).name == "live"
            )
            with pytest.raises(RetryableServiceError) as excinfo:
                client.report_observation(dead_user, 0, 0.5, 0.0)
            assert excinfo.value.status == 503
            assert excinfo.value.body["code"] == "shard_unavailable"
            assert excinfo.value.body["shard"] == "dead"
            # The 503 is a *router answer*: the caller's breaker stays
            # closed and traffic for healthy shards flows untouched.
            assert client._failures == [0]
            client.report_observation(live_user, 0, 0.5, 0.0)
            assert float(client.predict(live_user, 0)) > 0.0
        finally:
            client.close()
            router.stop()
            live.stop()

    def test_routed_fenced_409_redirects_without_tripping_breakers(
        self, tmp_path
    ):
        """PR 5's fencing contract, extended to the routed path: a shard
        that is an HA pair lists its standby first, the router's shard
        client swallows the standby's fenced ``not_primary`` 409 by
        redirecting to the primary, and no breaker anywhere counts it."""
        store = str(tmp_path / "epoch.json")
        primary = PredictionServer(
            data_dir=str(tmp_path / "primary"),
            replication=ReplicationConfig(store, role="primary", node_id="p"),
            **SERVER_ARGS,
        )
        primary.start()
        standby = PredictionServer(
            data_dir=str(tmp_path / "standby"),
            replication=ReplicationConfig(
                store,
                role="standby",
                primary_address=primary.address,
                node_id="s",
                poll_interval=0.01,
            ),
            **SERVER_ARGS,
        )
        standby.start()
        # Standby listed first: every write the router sends hits the
        # fence before the shard client learns the primary.
        table = PlacementTable(
            [
                ShardSpec(
                    name="pair",
                    addresses=(standby.address, primary.address),
                )
            ]
        )
        router = ClusterRouter(table, client_kwargs={"breaker_threshold": 1})
        router.start()
        client = PredictionClient(
            router.address, retries=0, breaker_threshold=1
        )
        try:
            for k in range(5):
                client.report_observation(k, k % 3, 0.4, float(k))
            assert float(client.predict(0, 0)) > 0.0
            shard_client = router.shard_client("pair")
            # The fenced 409 redirect must not have counted as a failure
            # on either endpoint of the shard client...
            assert shard_client._failures == [0, 0]
            # ... and the caller-facing breaker never saw an error at all.
            assert client._failures == [0]
            # Writes actually landed on the primary through the fence.
            with PredictionClient(primary.address, retries=0) as direct:
                assert direct.status()["updates_applied"] >= 5
        finally:
            client.close()
            router.stop()
            standby.stop()
            primary.stop()
