"""Tests for SLA thresholds and the sliding-window violation monitor."""

import pytest

from repro.adaptation import SLA, SLAMonitor


class TestSLA:
    def test_response_time_direction(self):
        sla = SLA(attribute="response_time", threshold=2.0)
        assert sla.violated(3.0)
        assert not sla.violated(1.0)
        assert not sla.violated(2.0)  # boundary is compliant

    def test_throughput_direction(self):
        sla = SLA(attribute="throughput", threshold=50.0, lower_is_better=False)
        assert sla.violated(10.0)
        assert not sla.violated(100.0)

    def test_margin_orientation(self):
        rt = SLA(attribute="rt", threshold=2.0)
        assert rt.margin(1.5) == pytest.approx(0.5)  # compliant: positive
        assert rt.margin(3.0) == pytest.approx(-1.0)
        tp = SLA(attribute="tp", threshold=50.0, lower_is_better=False)
        assert tp.margin(60.0) == pytest.approx(10.0)
        assert tp.margin(40.0) == pytest.approx(-10.0)

    def test_non_finite_threshold_rejected(self):
        with pytest.raises(ValueError):
            SLA(attribute="rt", threshold=float("nan"))


class TestSLAMonitor:
    def _monitor(self, window=3, min_violations=2):
        return SLAMonitor(
            SLA(attribute="rt", threshold=2.0),
            window=window,
            min_violations=min_violations,
        )

    def test_single_spike_not_sustained(self):
        monitor = self._monitor()
        assert not monitor.observe(5.0)  # one violation out of window 3

    def test_sustained_violation_detected(self):
        monitor = self._monitor()
        monitor.observe(5.0)
        assert monitor.observe(5.0)  # 2 of last 3

    def test_window_slides(self):
        monitor = self._monitor()
        monitor.observe(5.0)
        monitor.observe(1.0)
        monitor.observe(1.0)
        # The early violation has slid out of the window.
        assert not monitor.observe(5.0)

    def test_reset_clears_window(self):
        monitor = self._monitor()
        monitor.observe(5.0)
        monitor.reset()
        assert not monitor.observe(5.0)  # back to 1-of-3

    def test_lifetime_counters_survive_reset(self):
        monitor = self._monitor()
        monitor.observe(5.0)
        monitor.observe(1.0)
        monitor.reset()
        assert monitor.total_observations == 2
        assert monitor.total_violations == 1
        assert monitor.violation_rate == pytest.approx(0.5)

    def test_violation_rate_empty(self):
        assert self._monitor().violation_rate == 0.0

    def test_min_violations_one_is_immediate(self):
        monitor = self._monitor(window=3, min_violations=1)
        assert monitor.observe(5.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            self._monitor(window=0)

    def test_invalid_min_violations(self):
        with pytest.raises(ValueError):
            self._monitor(window=3, min_violations=4)
