"""Tests for AMFConfig validation and presets."""

import pytest

from repro.core import AMFConfig


class TestPresets:
    def test_defaults_match_paper(self):
        config = AMFConfig()
        assert config.rank == 10
        assert config.learning_rate == 0.8
        assert config.lambda_u == 0.001
        assert config.beta == 0.3

    def test_response_time_preset(self):
        config = AMFConfig.for_response_time()
        assert config.alpha == -0.007
        assert config.value_max == 20.0

    def test_throughput_preset(self):
        config = AMFConfig.for_throughput()
        assert config.alpha == -0.05
        assert config.value_max == 7000.0

    def test_preset_overrides(self):
        config = AMFConfig.for_response_time(rank=5, learning_rate=0.1)
        assert config.rank == 5
        assert config.learning_rate == 0.1
        assert config.alpha == -0.007  # preserved

    def test_with_updates(self):
        config = AMFConfig().with_updates(beta=0.5)
        assert config.beta == 0.5
        assert AMFConfig().beta == 0.3  # original untouched


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("rank", 0),
            ("learning_rate", 0.0),
            ("learning_rate", -1.0),
            ("lambda_u", -0.1),
            ("lambda_s", -0.1),
            ("beta", 1.5),
            ("beta", -0.1),
            ("value_floor", 0.0),
            ("expiry_seconds", 0.0),
            ("init_scale", 0.0),
            ("init_error", 0.0),
            ("normalized_floor", 0.0),
            ("grad_clip", 0.0),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(ValueError):
            AMFConfig(**{field: value})

    def test_inverted_value_range_rejected(self):
        with pytest.raises(ValueError, match="value_max"):
            AMFConfig(value_min=10.0, value_max=5.0)

    def test_frozen(self):
        config = AMFConfig()
        with pytest.raises(AttributeError):
            config.rank = 20
