"""Tests for the write-ahead observation log and the checkpoint store."""

import errno
import os

import numpy as np
import pytest

from repro.core import AdaptiveMatrixFactorization, AMFConfig
from repro.datasets.schema import QoSRecord
from repro.server import (
    PredictionClient,
    PredictionServer,
    RetryableServiceError,
)
from repro.server.wal import CheckpointStore, WalAppendError, WriteAheadLog


def record(k, value=1.0):
    return QoSRecord(timestamp=float(k), user_id=k % 5, service_id=k % 7, value=value)


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync=False) as wal:
            for k in range(20):
                assert wal.append(record(k, value=0.5 + k)) == k + 1
            assert wal.last_seq == 20
        reader = WriteAheadLog(str(tmp_path), fsync=False)
        entries = list(reader.replay())
        assert [seq for seq, __ in entries] == list(range(1, 21))
        assert entries[3][1].value == 0.5 + 3
        assert entries[3][1].user_id == 3 % 5

    def test_replay_after_seq_skips_prefix(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync=False)
        for k in range(10):
            wal.append(record(k))
        assert [seq for seq, __ in wal.replay(after_seq=7)] == [8, 9, 10]

    def test_empty_log(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync=False)
        assert wal.last_seq == 0
        assert list(wal.replay()) == []

    def test_sequence_continues_across_reopen(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync=False)
        for k in range(5):
            wal.append(record(k))
        wal.close()
        reopened = WriteAheadLog(str(tmp_path), fsync=False)
        assert reopened.last_seq == 5
        assert reopened.append(record(5)) == 6

    def test_closed_log_rejects_appends(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync=False)
        wal.close()
        assert not wal.writable
        with pytest.raises(ValueError, match="closed"):
            wal.append(record(0))


class TestSegments:
    def test_rotation(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_max_records=10, fsync=False)
        for k in range(35):
            wal.append(record(k))
        assert wal.segment_count() == 4
        assert len(list(wal.replay())) == 35

    def test_prune_keeps_uncovered_and_active(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_max_records=10, fsync=False)
        for k in range(35):
            wal.append(record(k))
        removed = wal.prune(up_to_seq=25)
        assert removed == 2  # segments [1..10] and [11..20]; [21..30] has 26..30
        assert [seq for seq, __ in wal.replay(after_seq=25)] == list(range(26, 36))

    def test_prune_never_deletes_active_segment(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_max_records=10, fsync=False)
        for k in range(10):
            wal.append(record(k))
        assert wal.prune(up_to_seq=10) == 0
        assert wal.segment_count() == 1

    def test_invalid_segment_size(self, tmp_path):
        with pytest.raises(ValueError, match="segment_max_records"):
            WriteAheadLog(str(tmp_path), segment_max_records=0)


class TestTornTail:
    def _torn_log(self, tmp_path, garbage: bytes):
        wal = WriteAheadLog(str(tmp_path), fsync=False)
        for k in range(8):
            wal.append(record(k))
        wal.close()
        segments = [n for n in os.listdir(tmp_path) if n.startswith("wal-")]
        with open(os.path.join(tmp_path, segments[-1]), "ab") as handle:
            handle.write(garbage)
        return WriteAheadLog(str(tmp_path), fsync=False)

    def test_partial_final_line_is_ignored_and_counted(self, tmp_path):
        reopened = self._torn_log(tmp_path, b'{"seq": 9, "t": 1.0, "u"')
        assert reopened.last_seq == 8
        assert reopened.torn_lines >= 1
        assert len(list(reopened.replay())) == 8

    def test_binary_garbage_tail(self, tmp_path):
        reopened = self._torn_log(tmp_path, b"\x00\xff\x00garbage\n")
        assert reopened.last_seq == 8
        assert reopened.append(record(8)) == 9

    def test_appends_continue_after_torn_tail(self, tmp_path):
        """New records after a tear must still replay (tear is mid-file,
        replay conservatively stops there — but the *write* path stays
        consistent: seq numbers never collide)."""
        reopened = self._torn_log(tmp_path, b"not json at all\n")
        reopened.append(record(8))
        fresh = WriteAheadLog(str(tmp_path), fsync=False)
        assert fresh.last_seq == 8  # scan stops at the tear, before seq 9
        # The tear costs the tail after it — documented conservative stop —
        # but never yields a corrupt or duplicated record.
        seqs = [seq for seq, __ in fresh.replay()]
        assert seqs == sorted(set(seqs))


class _NoSpaceHandle:
    """Wraps the real segment handle; ``write`` fails like a full disk."""

    def __init__(self, inner):
        self._inner = inner

    def write(self, data):
        raise OSError(errno.ENOSPC, "No space left on device")

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestAppendFailure:
    def test_os_error_surfaces_as_wal_append_error(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync=False)
        for k in range(3):
            wal.append(record(k))
        real_handle = wal._handle
        wal._handle = _NoSpaceHandle(real_handle)
        with pytest.raises(WalAppendError) as excinfo:
            wal.append(record(3))
        assert excinfo.value.errno == errno.ENOSPC
        assert wal.last_seq == 3  # the failed append assigned no sequence
        assert not wal.writable
        assert "No space left" in wal.append_failure

    def test_failure_is_sticky_even_if_disk_recovers(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync=False)
        wal.append(record(0))
        real_handle = wal._handle
        wal._handle = _NoSpaceHandle(real_handle)
        with pytest.raises(WalAppendError):
            wal.append(record(1))
        wal._handle = real_handle  # "space freed" — a partial line may
        with pytest.raises(WalAppendError, match="failed state"):
            wal.append(record(1))  # still sit at the tail, so stay frozen

    def test_committed_prefix_survives_a_failed_append(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync=False)
        for k in range(5):
            wal.append(record(k, value=2.0 + k))
        wal._handle = _NoSpaceHandle(wal._handle)
        with pytest.raises(WalAppendError):
            wal.append(record(5))
        reopened = WriteAheadLog(str(tmp_path), fsync=False)
        assert reopened.last_seq == 5
        assert [seq for seq, __ in reopened.replay()] == [1, 2, 3, 4, 5]


class TestReadCommitted:
    def test_windows_by_after_seq_and_limit(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_max_records=4, fsync=False)
        for k in range(10):
            wal.append(record(k), key=f"k:{k}")
        batch = wal.read_committed(after_seq=3, limit=4)
        assert [seq for seq, __, __ in batch] == [4, 5, 6, 7]
        assert [key for __, __, key in batch] == ["k:3", "k:4", "k:5", "k:6"]
        assert wal.read_committed(after_seq=10) == []

    def test_keyless_records_ship_none(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync=False)
        wal.append(record(0))
        [(seq, shipped, key)] = wal.read_committed()
        assert seq == 1
        assert key is None
        assert shipped.value == record(0).value

    def test_limit_must_be_positive(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync=False)
        with pytest.raises(ValueError, match="limit"):
            wal.read_committed(limit=0)


class TestReadOnlyDegradedServer:
    def test_failed_append_degrades_to_read_only_507(self, tmp_path):
        server = PredictionServer(
            data_dir=str(tmp_path / "srv"),
            rng=0,
            background_replay=False,
            checkpoint_interval=1000,
        )
        server.start()
        try:
            client = PredictionClient(server.address, retries=0)
            for k in range(10):
                rec = record(k, value=1.0 + 0.1 * k)
                client.report_observation(
                    rec.user_id, rec.service_id, rec.value, rec.timestamp
                )
            server._wal._handle = _NoSpaceHandle(server._wal._handle)
            for __ in range(2):  # the degradation is sticky
                with pytest.raises(RetryableServiceError) as excinfo:
                    client.report_observation(0, 0, 1.0, 99.0)
                assert excinfo.value.status == 507
                assert excinfo.value.body["code"] == "insufficient_storage"
            # Predictions keep serving from the in-memory model.
            assert client.predict(0, 0) > 0
            assert client.status()["durability"]["read_only"] is not None
            assert client.health()["checks"]["wal_writable"] is False
            exposition = client.metrics()
            assert "qos_wal_append_errors_total" in exposition
        finally:
            server.stop()


class TestCheckpointStore:
    def _trained(self, n=50):
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
        for k in range(n):
            model.observe(record(k, value=1.0 + 0.01 * k))
        return model

    def test_roundtrip_with_wal_seq(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        assert store.load() is None
        model = self._trained()
        store.save(model, wal_seq=42)
        restored, seq = store.load()
        assert seq == 42
        np.testing.assert_array_equal(
            restored.predict_matrix(), model.predict_matrix()
        )
        assert restored.updates_applied == model.updates_applied

    def test_no_tmp_file_left_behind(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save(self._trained(), wal_seq=1)
        assert not any(name.endswith(".tmp") for name in os.listdir(tmp_path))

    def test_save_overwrites_atomically(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        model = self._trained(10)
        store.save(model, wal_seq=10)
        model.observe(record(99, value=3.0))
        store.save(model, wal_seq=11)
        restored, seq = store.load()
        assert seq == 11
        assert restored.updates_applied == model.updates_applied

    def test_restored_rng_continues_identically(self, tmp_path):
        """The checkpointed RNG state makes post-restore randomness (new
        entity initialization) identical to the uninterrupted model."""
        store = CheckpointStore(str(tmp_path))
        model = self._trained()
        store.save(model, wal_seq=0)
        restored, __ = store.load()
        # Genuinely new users AND services: their init vectors are drawn
        # from the restored stream, the sharpest test of RNG continuation.
        tail = [
            QoSRecord(timestamp=float(k), user_id=50 + k, service_id=70 + k,
                      value=2.0)
            for k in range(30)
        ]
        for sample in tail:
            model.observe(sample)
            restored.observe(sample)
        np.testing.assert_array_equal(model.user_factors(), restored.user_factors())
        np.testing.assert_array_equal(
            model.service_factors(), restored.service_factors()
        )
