"""Tests for density masking and train/test splitting (+ hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.sampling import (
    mask_matrix_to_density,
    split_entities,
    split_observed,
    train_test_split_matrix,
)
from repro.datasets.schema import QoSMatrix


def full_matrix(n_users=20, n_services=30, seed=0):
    rng = np.random.default_rng(seed)
    return QoSMatrix.dense(rng.uniform(0.1, 5.0, size=(n_users, n_services)))


class TestMaskToDensity:
    def test_target_density_hit(self):
        matrix = full_matrix()
        masked = mask_matrix_to_density(matrix, 0.25, rng=0)
        assert masked.mask.sum() == round(0.25 * matrix.values.size)

    def test_only_observed_entries_kept(self):
        matrix = full_matrix()
        matrix.mask[:, ::2] = False  # half the columns unobserved
        masked = mask_matrix_to_density(matrix, 0.4, rng=0)
        assert not np.any(masked.mask & ~matrix.mask)

    def test_density_capped_by_available(self):
        matrix = full_matrix()
        matrix.mask[:] = False
        matrix.mask[0, :5] = True
        masked = mask_matrix_to_density(matrix, 0.9, rng=0)
        assert masked.mask.sum() == 5  # cannot invent observations

    def test_values_unchanged(self):
        matrix = full_matrix()
        masked = mask_matrix_to_density(matrix, 0.3, rng=0)
        np.testing.assert_array_equal(masked.values, matrix.values)

    def test_deterministic_given_seed(self):
        matrix = full_matrix()
        a = mask_matrix_to_density(matrix, 0.3, rng=5)
        b = mask_matrix_to_density(matrix, 0.3, rng=5)
        np.testing.assert_array_equal(a.mask, b.mask)

    def test_invalid_density_rejected(self):
        with pytest.raises(ValueError):
            mask_matrix_to_density(full_matrix(), 0.0)
        with pytest.raises(ValueError):
            mask_matrix_to_density(full_matrix(), 1.5)

    @given(density=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=50)
    def test_density_approximation_property(self, density):
        matrix = full_matrix(10, 12)
        masked = mask_matrix_to_density(matrix, density, rng=0)
        assert abs(masked.mask.sum() - density * 120) <= 1


class TestTrainTestSplit:
    def test_partition_of_observed(self):
        matrix = full_matrix()
        train, test = train_test_split_matrix(matrix, 0.3, rng=0)
        assert not np.any(train.mask & test.mask)  # disjoint
        np.testing.assert_array_equal(train.mask | test.mask, matrix.mask)

    def test_paper_protocol_density(self):
        matrix = full_matrix()
        train, __ = train_test_split_matrix(matrix, 0.1, rng=0)
        assert train.density == pytest.approx(0.1, abs=0.005)

    def test_sparse_input_respected(self):
        matrix = full_matrix()
        matrix.mask[(matrix.values > 2.5)] = False
        train, test = train_test_split_matrix(matrix, 0.2, rng=1)
        assert not np.any(train.mask & ~matrix.mask)
        assert not np.any(test.mask & ~matrix.mask)


class TestSplitObserved:
    def test_fraction_of_observed(self):
        matrix = full_matrix()
        first, second = split_observed(matrix, 0.25, rng=0)
        assert first.mask.sum() == round(0.25 * matrix.mask.sum())
        assert first.mask.sum() + second.mask.sum() == matrix.mask.sum()

    def test_disjoint(self):
        first, second = split_observed(full_matrix(), 0.5, rng=0)
        assert not np.any(first.mask & second.mask)


class TestSplitEntities:
    def test_counts(self):
        existing, new = split_entities(100, 0.8, rng=0)
        assert len(existing) == 80
        assert len(new) == 20

    def test_partition(self):
        existing, new = split_entities(50, 0.6, rng=1)
        combined = np.sort(np.concatenate([existing, new]))
        np.testing.assert_array_equal(combined, np.arange(50))

    def test_sorted_output(self):
        existing, new = split_entities(30, 0.5, rng=2)
        assert np.all(np.diff(existing) > 0)
        assert np.all(np.diff(new) > 0)

    def test_deterministic(self):
        a = split_entities(40, 0.7, rng=3)
        b = split_entities(40, 0.7, rng=3)
        np.testing.assert_array_equal(a[0], b[0])
