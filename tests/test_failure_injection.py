"""Failure-injection tests: the system under hostile or degenerate inputs.

These exercise the paths an operator actually hits: corrupt observations,
extreme QoS values, services vanishing between decision and application,
oracles failing mid-run, and pathological streams.  The contract under
test is always one of: a clean, descriptive error; graceful skipping; or
documented degraded behavior — never silent corruption.
"""

import numpy as np
import pytest

from repro.adaptation import (
    SLA,
    AbstractTask,
    ExecutionEngine,
    QoSPredictionService,
    ServiceRegistry,
    TensorQoSOracle,
    ThresholdPolicy,
    Workflow,
)
from repro.adaptation.policies import AdaptationAction, AdaptationPolicy
from repro.core import AdaptiveMatrixFactorization, AMFConfig, StreamTrainer
from repro.datasets import generate_dataset
from repro.datasets.schema import QoSRecord


def record(u, s, value, t=0.0):
    return QoSRecord(timestamp=t, user_id=u, service_id=s, value=value)


class TestHostileObservations:
    def test_nan_value_rejected_at_record_boundary(self):
        with pytest.raises(ValueError, match="finite"):
            record(0, 0, float("nan"))

    def test_inf_value_rejected_at_record_boundary(self):
        with pytest.raises(ValueError, match="finite"):
            record(0, 0, float("inf"))

    def test_negative_qos_clamped_not_propagated(self):
        """Negative raw values (clock skew artifacts) clamp to the floor
        instead of poisoning the transform."""
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
        model.observe(record(0, 0, -5.0))
        assert np.isfinite(model.predict(0, 0))

    def test_value_beyond_rmax_clamped(self):
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
        for __ in range(50):
            model.observe(record(0, 0, 1e9))
        assert model.predict(0, 0) <= 20.0

    def test_alternating_extremes_stay_finite(self):
        """A flapping service (floor <-> ceiling) must not blow up factors."""
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
        for k in range(500):
            model.observe(record(0, 0, 20.0 if k % 2 else 0.001, t=float(k)))
        assert np.all(np.isfinite(model.user_factors()))
        assert 0.0 <= model.predict(0, 0) <= 20.0

    def test_single_user_monoculture(self):
        """All observations from one user: no division blow-ups anywhere."""
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
        for s in range(100):
            model.observe(record(0, s, 0.5 + 0.01 * s))
        trainer = StreamTrainer(model)
        report = trainer.replay_until_converged(now=0.0)
        assert np.isfinite(report.final_error)

    def test_out_of_order_timestamps_accepted(self):
        """Late-arriving (older) samples are data, not errors."""
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
        model.observe(record(0, 0, 1.0, t=1000.0))
        model.observe(record(0, 1, 1.0, t=10.0))  # older than the previous
        assert model.n_stored_samples == 2


class TestAdaptationFailures:
    def _world(self):
        data = generate_dataset(n_users=4, n_services=6, n_slices=2, seed=0)
        registry = ServiceRegistry()
        for sid in range(6):
            registry.register(sid, "t")
        workflow = Workflow(name="w", tasks=[AbstractTask("A", "t")])
        workflow.bind("A", 0)
        predictor = QoSPredictionService(AMFConfig.for_response_time(), rng=0)
        sla = SLA(attribute="rt", threshold=1.0)
        return data, registry, workflow, predictor, sla

    def test_candidate_vanishes_between_decision_and_application(self):
        """The engine must skip an adaptation whose target was deregistered
        after the policy decided."""
        data, registry, workflow, predictor, sla = self._world()

        class VanishingTarget(AdaptationPolicy):
            def on_observation(self, user_id, workflow, task_name, observed_value,
                               now, registry, predictor):
                registry.deregister(3)  # decision target disappears...
                return AdaptationAction(
                    task_name=task_name,
                    old_service_id=workflow.bound_service(task_name),
                    new_service_id=3,  # ...right before this is applied
                    reason="test",
                    decided_at=now,
                )

        engine = ExecutionEngine(
            user_id=0,
            workflow=workflow,
            registry=registry,
            predictor=predictor,
            policy=VanishingTarget(),
            oracle=TensorQoSOracle(data, noise_sigma=0.0, rng=0),
            sla=sla,
        )
        engine.execute_once(now=0.0)
        assert engine.stats.adaptations == 0
        assert workflow.bound_service("A") == 0  # binding untouched

    def test_all_candidates_deregistered_mid_run(self):
        data, registry, workflow, predictor, sla = self._world()
        policy = ThresholdPolicy(sla, window=2, min_violations=1, improvement_margin=0.0)
        engine = ExecutionEngine(
            user_id=0,
            workflow=workflow,
            registry=registry,
            predictor=predictor,
            policy=policy,
            oracle=TensorQoSOracle(data, noise_sigma=0.0, rng=0),
            sla=sla,
        )
        for sid in range(1, 6):
            registry.deregister(sid)
        stats = engine.run(start=0.0, interval=10.0, count=20)
        assert stats.executions == 20  # keeps running on the only binding
        assert stats.adaptations == 0

    def test_oracle_failure_propagates_cleanly(self):
        """A broken ground-truth source is a hard error, not silent zeros."""
        data, registry, workflow, predictor, sla = self._world()

        class BrokenOracle(TensorQoSOracle):
            def value(self, user_id, service_id, now):
                raise ConnectionError("measurement backend down")

        engine = ExecutionEngine(
            user_id=0,
            workflow=workflow,
            registry=registry,
            predictor=predictor,
            policy=ThresholdPolicy(sla),
            oracle=BrokenOracle(data, rng=0),
            sla=sla,
        )
        with pytest.raises(ConnectionError, match="backend down"):
            engine.execute_once(now=0.0)
        assert engine.stats.executions == 0  # nothing half-counted

    def test_policy_exception_propagates(self):
        data, registry, workflow, predictor, sla = self._world()

        class BrokenPolicy(AdaptationPolicy):
            def on_observation(self, *args, **kwargs):
                raise RuntimeError("policy bug")

        engine = ExecutionEngine(
            user_id=0,
            workflow=workflow,
            registry=registry,
            predictor=predictor,
            policy=BrokenPolicy(),
            oracle=TensorQoSOracle(data, noise_sigma=0.0, rng=0),
            sla=sla,
        )
        with pytest.raises(RuntimeError, match="policy bug"):
            engine.execute_once(now=0.0)


class TestDegenerateTraining:
    def test_empty_stream_trainer_process(self):
        model = AdaptiveMatrixFactorization(rng=0)
        report = StreamTrainer(model).process([])
        assert report.arrivals == 0
        assert report.epochs == 0

    def test_single_sample_training(self):
        model = AdaptiveMatrixFactorization(rng=0)
        report = StreamTrainer(model).process([record(0, 0, 1.0)])
        assert report.arrivals == 1
        assert np.isfinite(model.predict(0, 0))

    def test_duplicate_heavy_stream(self):
        """1000 samples, all the same pair: store holds 1, training sane."""
        model = AdaptiveMatrixFactorization(rng=0)
        StreamTrainer(model).process(
            [record(0, 0, 2.0, t=float(k)) for k in range(1000)]
        )
        assert model.n_stored_samples == 1
        assert model.predict(0, 0) == pytest.approx(2.0, rel=0.3)

    def test_everything_expires_mid_training(self):
        model = AdaptiveMatrixFactorization(AMFConfig(expiry_seconds=5.0), rng=0)
        trainer = StreamTrainer(model)
        report = trainer.process(
            [record(k % 3, k % 4, 1.0, t=0.0) for k in range(30)], now=1000.0
        )
        assert model.n_stored_samples == 0
        assert np.isfinite(report.final_error) or np.isnan(report.final_error)
