"""Failure-injection tests: the system under hostile or degenerate inputs.

These exercise the paths an operator actually hits: corrupt observations,
extreme QoS values, services vanishing between decision and application,
oracles failing mid-run, pathological streams — and, at the serving layer,
malformed/oversized/truncated HTTP requests, flaky upstreams, poisoned
factor matrices, and lossy delivery (via the fault-injection harness).
The contract under test is always one of: a clean, descriptive error;
graceful skipping; or documented degraded behavior — never silent
corruption.
"""

import json
import socket
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np
import pytest

from repro.adaptation import (
    SLA,
    AbstractTask,
    ExecutionEngine,
    QoSPredictionService,
    ServiceRegistry,
    TensorQoSOracle,
    ThresholdPolicy,
    Workflow,
)
from repro.adaptation.policies import AdaptationAction, AdaptationPolicy
from repro.core import AdaptiveMatrixFactorization, AMFConfig, StreamTrainer
from repro.datasets import generate_dataset
from repro.datasets.schema import QoSRecord
from repro.server import (
    PredictionClient,
    PredictionServer,
    RetryableServiceError,
    TerminalServiceError,
)
from repro.simulation import FaultConfig, FaultInjector, drive_client


def record(u, s, value, t=0.0):
    return QoSRecord(timestamp=t, user_id=u, service_id=s, value=value)


class TestHostileObservations:
    def test_nan_value_rejected_at_record_boundary(self):
        with pytest.raises(ValueError, match="finite"):
            record(0, 0, float("nan"))

    def test_inf_value_rejected_at_record_boundary(self):
        with pytest.raises(ValueError, match="finite"):
            record(0, 0, float("inf"))

    def test_negative_qos_clamped_not_propagated(self):
        """Negative raw values (clock skew artifacts) clamp to the floor
        instead of poisoning the transform."""
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
        model.observe(record(0, 0, -5.0))
        assert np.isfinite(model.predict(0, 0))

    def test_value_beyond_rmax_clamped(self):
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
        for __ in range(50):
            model.observe(record(0, 0, 1e9))
        assert model.predict(0, 0) <= 20.0

    def test_alternating_extremes_stay_finite(self):
        """A flapping service (floor <-> ceiling) must not blow up factors."""
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
        for k in range(500):
            model.observe(record(0, 0, 20.0 if k % 2 else 0.001, t=float(k)))
        assert np.all(np.isfinite(model.user_factors()))
        assert 0.0 <= model.predict(0, 0) <= 20.0

    def test_single_user_monoculture(self):
        """All observations from one user: no division blow-ups anywhere."""
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
        for s in range(100):
            model.observe(record(0, s, 0.5 + 0.01 * s))
        trainer = StreamTrainer(model)
        report = trainer.replay_until_converged(now=0.0)
        assert np.isfinite(report.final_error)

    def test_out_of_order_timestamps_accepted(self):
        """Late-arriving (older) samples are data, not errors."""
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
        model.observe(record(0, 0, 1.0, t=1000.0))
        model.observe(record(0, 1, 1.0, t=10.0))  # older than the previous
        assert model.n_stored_samples == 2


class TestAdaptationFailures:
    def _world(self):
        data = generate_dataset(n_users=4, n_services=6, n_slices=2, seed=0)
        registry = ServiceRegistry()
        for sid in range(6):
            registry.register(sid, "t")
        workflow = Workflow(name="w", tasks=[AbstractTask("A", "t")])
        workflow.bind("A", 0)
        predictor = QoSPredictionService(AMFConfig.for_response_time(), rng=0)
        sla = SLA(attribute="rt", threshold=1.0)
        return data, registry, workflow, predictor, sla

    def test_candidate_vanishes_between_decision_and_application(self):
        """The engine must skip an adaptation whose target was deregistered
        after the policy decided."""
        data, registry, workflow, predictor, sla = self._world()

        class VanishingTarget(AdaptationPolicy):
            def on_observation(self, user_id, workflow, task_name, observed_value,
                               now, registry, predictor):
                registry.deregister(3)  # decision target disappears...
                return AdaptationAction(
                    task_name=task_name,
                    old_service_id=workflow.bound_service(task_name),
                    new_service_id=3,  # ...right before this is applied
                    reason="test",
                    decided_at=now,
                )

        engine = ExecutionEngine(
            user_id=0,
            workflow=workflow,
            registry=registry,
            predictor=predictor,
            policy=VanishingTarget(),
            oracle=TensorQoSOracle(data, noise_sigma=0.0, rng=0),
            sla=sla,
        )
        engine.execute_once(now=0.0)
        assert engine.stats.adaptations == 0
        assert workflow.bound_service("A") == 0  # binding untouched

    def test_all_candidates_deregistered_mid_run(self):
        data, registry, workflow, predictor, sla = self._world()
        policy = ThresholdPolicy(sla, window=2, min_violations=1, improvement_margin=0.0)
        engine = ExecutionEngine(
            user_id=0,
            workflow=workflow,
            registry=registry,
            predictor=predictor,
            policy=policy,
            oracle=TensorQoSOracle(data, noise_sigma=0.0, rng=0),
            sla=sla,
        )
        for sid in range(1, 6):
            registry.deregister(sid)
        stats = engine.run(start=0.0, interval=10.0, count=20)
        assert stats.executions == 20  # keeps running on the only binding
        assert stats.adaptations == 0

    def test_oracle_failure_propagates_cleanly(self):
        """A broken ground-truth source is a hard error, not silent zeros."""
        data, registry, workflow, predictor, sla = self._world()

        class BrokenOracle(TensorQoSOracle):
            def value(self, user_id, service_id, now):
                raise ConnectionError("measurement backend down")

        engine = ExecutionEngine(
            user_id=0,
            workflow=workflow,
            registry=registry,
            predictor=predictor,
            policy=ThresholdPolicy(sla),
            oracle=BrokenOracle(data, rng=0),
            sla=sla,
        )
        with pytest.raises(ConnectionError, match="backend down"):
            engine.execute_once(now=0.0)
        assert engine.stats.executions == 0  # nothing half-counted

    def test_policy_exception_propagates(self):
        data, registry, workflow, predictor, sla = self._world()

        class BrokenPolicy(AdaptationPolicy):
            def on_observation(self, *args, **kwargs):
                raise RuntimeError("policy bug")

        engine = ExecutionEngine(
            user_id=0,
            workflow=workflow,
            registry=registry,
            predictor=predictor,
            policy=BrokenPolicy(),
            oracle=TensorQoSOracle(data, noise_sigma=0.0, rng=0),
            sla=sla,
        )
        with pytest.raises(RuntimeError, match="policy bug"):
            engine.execute_once(now=0.0)


class TestDegenerateTraining:
    def test_empty_stream_trainer_process(self):
        model = AdaptiveMatrixFactorization(rng=0)
        report = StreamTrainer(model).process([])
        assert report.arrivals == 0
        assert report.epochs == 0

    def test_single_sample_training(self):
        model = AdaptiveMatrixFactorization(rng=0)
        report = StreamTrainer(model).process([record(0, 0, 1.0)])
        assert report.arrivals == 1
        assert np.isfinite(model.predict(0, 0))

    def test_duplicate_heavy_stream(self):
        """1000 samples, all the same pair: store holds 1, training sane."""
        model = AdaptiveMatrixFactorization(rng=0)
        StreamTrainer(model).process(
            [record(0, 0, 2.0, t=float(k)) for k in range(1000)]
        )
        assert model.n_stored_samples == 1
        assert model.predict(0, 0) == pytest.approx(2.0, rel=0.3)

    def test_everything_expires_mid_training(self):
        model = AdaptiveMatrixFactorization(AMFConfig(expiry_seconds=5.0), rng=0)
        trainer = StreamTrainer(model)
        report = trainer.process(
            [record(k % 3, k % 4, 1.0, t=0.0) for k in range(30)], now=1000.0
        )
        assert model.n_stored_samples == 0
        assert np.isfinite(report.final_error) or np.isnan(report.final_error)


# ---------------------------------------------------------------------------
# Serving-layer faults
# ---------------------------------------------------------------------------


@pytest.fixture
def server():
    with PredictionServer(rng=0, background_replay=False) as srv:
        yield srv


def _post_raw(address, path, body: bytes, content_length: "int | None" = None):
    """POST arbitrary bytes, returning (status, parsed JSON body)."""
    host, port = address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=body,
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    if content_length is not None:
        request.add_header("Content-Length", str(content_length))
    try:
        with urllib.request.urlopen(request, timeout=5.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHostileRequests:
    def test_malformed_json_is_a_clean_400(self, server):
        status, body = _post_raw(server.address, "/observations", b"{not json!!")
        assert status == 400
        assert "invalid JSON" in body["error"]
        # The server is still fully functional afterwards.
        assert PredictionClient(server.address).status()["observations_handled"] == 0

    def test_non_object_json_rejected(self, server):
        status, body = _post_raw(server.address, "/observations", b"[1, 2, 3]")
        assert status == 400
        assert "must be an object" in body["error"]

    def test_oversized_body_rejected_with_413(self):
        with PredictionServer(rng=0, background_replay=False,
                              max_body_bytes=512) as srv:
            big = json.dumps({"observations": [{"x": "y" * 600}]}).encode()
            status, body = _post_raw(srv.address, "/observations/batch", big)
            assert status == 413
            assert "exceeds limit" in body["error"]
            # The typed client surfaces it as terminal (retrying cannot help).
            client = PredictionClient(srv.address)
            with pytest.raises(TerminalServiceError, match="413"):
                client.report_observations_detailed(
                    [{"timestamp": 0.0, "user_id": 0, "service_id": 0,
                      "value": 1.0}] * 50
                )

    def test_connection_drop_mid_request(self, server):
        """A client that dies after the headers (Content-Length promised,
        body never sent) must not wedge or kill the server."""
        host, port = server.address
        for __ in range(3):
            sock = socket.create_connection((host, port), timeout=5.0)
            sock.sendall(
                b"POST /observations HTTP/1.1\r\n"
                b"Host: x\r\nContent-Type: application/json\r\n"
                b"Content-Length: 4096\r\n\r\n{\"trunc"
            )
            sock.close()
        client = PredictionClient(server.address)
        client.report_observation(0, 0, 1.0, 0.0)
        assert client.status()["observations_handled"] == 1

    def test_unexpected_handler_exception_is_a_json_500(self, server):
        server._handle_status = lambda: 1 / 0  # simulate an internal bug
        client = PredictionClient(server.address, retries=0)
        with pytest.raises(RetryableServiceError, match="ZeroDivisionError"):
            client.status()
        # The failure was accounted and other routes still work.
        health = client.health()
        assert health["status"] == "ok"

    def test_batch_partial_apply_reports_per_item_outcomes(self, server):
        client = PredictionClient(server.address)
        outcome = client.report_observations_detailed(
            [
                {"timestamp": 0.0, "user_id": 0, "service_id": 0, "value": 1.0},
                {"timestamp": 0.0, "user_id": 0, "service_id": 1},  # no value
                "not an object",
                {"timestamp": 0.0, "user_id": -1, "service_id": 0, "value": 1.0},
                {"timestamp": 1.0, "user_id": 1, "service_id": 1, "value": 2.0},
            ]
        )
        assert outcome["accepted"] == 2
        assert [item["index"] for item in outcome["rejected"]] == [1, 2, 3]
        assert "value" in outcome["rejected"][0]["error"]
        # Good records around the bad ones were applied, not rolled back.
        status = client.status()
        assert status["observations_handled"] == 2
        assert status["observations_rejected"] == 3


class TestDegradedPredictions:
    def test_cold_server_serves_prior_not_error(self, server):
        client = PredictionClient(server.address)
        result = client.predict_detailed(5, 7)
        assert result["source"] == "prior"
        assert np.isfinite(result["prediction"])

    def test_unknown_service_degrades_to_user_mean(self, server):
        client = PredictionClient(server.address)
        client.report_observation(0, 0, 4.0, 0.0)
        result = client.predict_detailed(0, 999)
        assert result["source"] == "user_mean"
        assert result["prediction"] == pytest.approx(4.0)

    def test_unknown_queries_do_not_grow_the_model(self, server):
        client = PredictionClient(server.address)
        client.report_observation(0, 0, 1.0, 0.0)
        for sid in range(100, 200):
            client.predict_detailed(0, sid)
        assert server.model.n_services == 1  # hostile scans cost nothing

    def test_poisoned_factors_fail_health_and_degrade_predictions(self, server):
        client = PredictionClient(server.address)
        client.report_observation(0, 0, 3.0, 0.0)
        assert client.predict_detailed(0, 0)["source"] == "model"

        def poison(m):
            m._user_factors.row(0)[:] = np.nan

        server.model.with_model(poison)
        health = client.health()
        assert health["status"] == "unavailable"
        assert not health["checks"]["model_finite"]
        # Predictions keep flowing from the fallback chain, flagged as such.
        result = client.predict_detailed(0, 0)
        assert result["source"] == "user_service_mean"
        assert result["prediction"] == pytest.approx(3.0)
        assert client.status()["degraded_predictions"] >= 1

        def heal(m):
            m._user_factors.reinitialize(0)

        server.model.with_model(heal)
        assert client.health()["status"] == "ok"
        assert client.predict_detailed(0, 0)["source"] == "model"


class _FlakyUpstream:
    """A stub server that fails its first N requests with a given status."""

    def __init__(self, failures: int, status: int = 503):
        state = {"left": failures, "gets": 0, "posts": 0}
        self.state = state

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, format, *args):  # noqa: A002
                pass

            def _reply(self):
                if state["left"] > 0:
                    state["left"] -= 1
                    code, body = status, {"error": "injected failure"}
                else:
                    code, body = 200, {"ok": True, "sample_error": 0.0}
                data = json.dumps(body).encode()
                self.send_response(code)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def do_GET(self):
                state["gets"] += 1
                self._reply()

            def do_POST(self):
                state["posts"] += 1
                self.rfile.read(int(self.headers.get("Content-Length", 0)))
                self._reply()

        self.httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.thread = threading.Thread(target=self.httpd.serve_forever, daemon=True)

    def __enter__(self):
        self.thread.start()
        return self

    def __exit__(self, *exc_info):
        self.httpd.shutdown()
        self.httpd.server_close()

    @property
    def address(self):
        return self.httpd.server_address[0], self.httpd.server_address[1]


class TestClientResilience:
    def _client(self, address, **overrides):
        defaults = dict(retries=3, backoff=0.01, backoff_max=0.05, jitter=0.0)
        defaults.update(overrides)
        return PredictionClient(address, **defaults)

    def test_get_retries_through_transient_503s(self):
        with _FlakyUpstream(failures=2) as upstream:
            client = self._client(upstream.address)
            assert client.status() == {"ok": True, "sample_error": 0.0}
            assert upstream.state["gets"] == 3
            assert client.retries_performed == 2

    def test_retries_exhausted_raises_retryable(self):
        with _FlakyUpstream(failures=10**9) as upstream:
            client = self._client(upstream.address, retries=2)
            with pytest.raises(RetryableServiceError, match="503"):
                client.status()
            assert upstream.state["gets"] == 3  # 1 try + 2 retries, then give up

    def test_observation_posts_are_never_retried(self):
        """Re-reporting re-applies an SGD step — at-least-once delivery is
        the caller's decision, so the client must not retry on its own."""
        with _FlakyUpstream(failures=1) as upstream:
            client = self._client(upstream.address)
            with pytest.raises(RetryableServiceError):
                client.report_observation(0, 0, 1.0, 0.0)
            assert upstream.state["posts"] == 1

    def test_4xx_is_terminal_and_not_retried(self):
        with _FlakyUpstream(failures=5, status=404) as upstream:
            client = self._client(upstream.address)
            with pytest.raises(TerminalServiceError, match="404"):
                client.status()
            assert upstream.state["gets"] == 1

    def test_unreachable_server_is_retryable(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here now
        client = self._client(("127.0.0.1", port), retries=0)
        with pytest.raises(RetryableServiceError, match="cannot reach"):
            client.status()


class TestFaultInjector:
    def _records(self, n=200):
        return [record(k % 5, k % 7, 1.0 + 0.01 * k, t=float(k)) for k in range(n)]

    def test_no_faults_is_identity(self):
        records = self._records()
        assert list(FaultInjector(records, FaultConfig(), rng=0)) == records

    def test_same_seed_same_stream(self):
        config = FaultConfig(drop_rate=0.2, duplicate_rate=0.1, reorder_rate=0.1,
                             corrupt_rate=0.1)
        first = list(FaultInjector(self._records(), config, rng=7))
        second = list(FaultInjector(self._records(), config, rng=7))
        assert first == second

    def test_drop_everything(self):
        injector = FaultInjector(self._records(50), FaultConfig(drop_rate=1.0), rng=0)
        assert list(injector) == []
        assert injector.counts["dropped"] == 50

    def test_duplicate_everything(self):
        injector = FaultInjector(
            self._records(50), FaultConfig(duplicate_rate=1.0), rng=0
        )
        delivered = list(injector)
        assert len(delivered) == 100
        assert delivered[0] == delivered[1]

    def test_corruption_scales_values_and_is_tagged(self):
        injector = FaultInjector(
            self._records(50), FaultConfig(corrupt_rate=1.0, corrupt_factor=10.0),
            rng=0,
        )
        events = [e for e in injector.events() if e.record is not None]
        assert all("corrupt" in e.faults for e in events)
        assert events[0].record.value == pytest.approx(10.0)

    def test_reorder_preserves_the_multiset(self):
        records = self._records(100)
        delivered = list(FaultInjector(records, FaultConfig(reorder_rate=0.5), rng=0))
        assert sorted(delivered, key=lambda r: r.timestamp) == records
        assert delivered != records  # something actually moved

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError, match="drop_rate"):
            FaultConfig(drop_rate=1.5)
        with pytest.raises(ValueError, match="stall_seconds"):
            FaultConfig(stall_seconds=-1.0)

    def test_drive_client_survives_a_hostile_stream(self, server):
        """End to end: a mangled stream (including stalls) is absorbed;
        nothing raises, the model stays finite, tallies reconcile."""
        injector = FaultInjector(
            self._records(120),
            FaultConfig(drop_rate=0.1, duplicate_rate=0.1, reorder_rate=0.1,
                        corrupt_rate=0.1, corrupt_factor=1e6,
                        stall_rate=0.05, stall_seconds=0.0),
            rng=3,
        )
        client = PredictionClient(server.address)
        outcome = drive_client(client, injector)
        status = client.status()
        assert outcome["reported"] == status["observations_handled"]
        assert outcome["reported"] + outcome["rejected"] == injector.counts["delivered"]
        assert outcome["stalls"] == injector.counts["stalled"]
        assert server.model.is_finite()
