"""Tests for the QoSPredictionService facade (Fig. 3 pipeline)."""

import pytest

from repro.adaptation import QoSPredictionService
from repro.core import AMFConfig


class TestReporting:
    def test_observation_count(self):
        service = QoSPredictionService(rng=0)
        service.report_observation(0, 0, 1.0, timestamp=0.0)
        service.report_observation(0, 1, 2.0, timestamp=1.0)
        assert service.observations_handled == 2

    def test_updates_model_online(self):
        service = QoSPredictionService(rng=0, replay_budget=0)
        service.report_observation(0, 0, 1.0, timestamp=0.0)
        assert service.model.updates_applied == 1

    def test_replay_budget_applies_extra_updates(self):
        budgeted = QoSPredictionService(rng=0, replay_budget=5)
        budgeted.report_observation(0, 0, 1.0, timestamp=0.0)
        assert budgeted.model.updates_applied == 6  # 1 arrival + 5 replays

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            QoSPredictionService(replay_budget=-1)


class TestPrediction:
    def test_predict_registers_unknown_entities(self):
        service = QoSPredictionService(rng=0)
        # Never-observed pair: prediction still works (random factors).
        value = service.predict(3, 7)
        assert 0.0 <= value <= service.model.config.value_max

    def test_repeated_observations_converge(self):
        service = QoSPredictionService(AMFConfig.for_response_time(), rng=0)
        for k in range(300):
            service.report_observation(0, 0, 2.0, timestamp=float(k))
        assert service.predict(0, 0) == pytest.approx(2.0, rel=0.2)

    def test_predict_candidates_keys(self):
        service = QoSPredictionService(rng=0)
        predictions = service.predict_candidates(0, [3, 5, 9])
        assert set(predictions) == {3, 5, 9}

    def test_best_candidate_lower_is_better(self):
        service = QoSPredictionService(AMFConfig.for_response_time(), rng=0)
        # Teach the model: service 0 fast, service 1 slow, for user 0.
        for k in range(300):
            service.report_observation(0, 0, 0.3, timestamp=float(k))
            service.report_observation(0, 1, 8.0, timestamp=float(k))
        best, predicted = service.best_candidate(0, [0, 1])
        assert best == 0
        assert predicted < 2.0

    def test_best_candidate_higher_is_better(self):
        service = QoSPredictionService(
            AMFConfig.for_throughput(), rng=0
        )
        for k in range(300):
            service.report_observation(0, 0, 5.0, timestamp=float(k))
            service.report_observation(0, 1, 500.0, timestamp=float(k))
        best, __ = service.best_candidate(0, [0, 1], lower_is_better=False)
        assert best == 1

    def test_best_candidate_empty_rejected(self):
        with pytest.raises(ValueError):
            QoSPredictionService(rng=0).best_candidate(0, [])

    def test_synchronize_runs_replay(self):
        service = QoSPredictionService(rng=0, replay_budget=0)
        for k in range(50):
            service.report_observation(k % 5, k % 7, 1.0, timestamp=0.0)
        before = service.model.updates_applied
        service.synchronize(now=0.0)
        assert service.model.updates_applied > before
