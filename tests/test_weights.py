"""Tests for repro.core.weights: EMA error tracking and credence weights.

The invariants under test come straight from Eqs. 12-15 of the paper:
weights are non-negative and sum to one, the error trackers stay positive
and move toward the observed sample error, and new entities start at the
maximal error (so they absorb most of each update).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weights import AdaptiveWeights, _GrowableErrors

errors = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


class TestGrowableErrors:
    def test_new_ids_get_init_value(self):
        tracker = _GrowableErrors(init_error=1.0)
        assert tracker.get(0) == 1.0
        assert tracker.get(100) == 1.0  # beyond current size: init, no growth

    def test_get_does_not_grow(self):
        """Reads are pure: asking about an unknown id must not allocate
        state for it (a prediction request is not an observation)."""
        tracker = _GrowableErrors(init_error=1.0)
        assert len(tracker) == 0
        tracker.get(10**9)
        assert len(tracker) == 0
        tracker.set(3, 0.25)
        size = len(tracker)
        tracker.get(500)
        assert len(tracker) == size

    def test_get_negative_id_rejected(self):
        tracker = _GrowableErrors()
        with pytest.raises(IndexError):
            tracker.get(-1)

    def test_set_and_get(self):
        tracker = _GrowableErrors()
        tracker.set(3, 0.25)
        assert tracker.get(3) == 0.25

    def test_growth_preserves_existing(self):
        tracker = _GrowableErrors(capacity=2)
        tracker.set(0, 0.5)
        tracker.ensure(500)
        assert tracker.get(0) == 0.5

    def test_reset(self):
        tracker = _GrowableErrors(init_error=1.0)
        tracker.set(1, 0.1)
        tracker.reset(1)
        assert tracker.get(1) == 1.0

    def test_len_tracks_highest_id(self):
        tracker = _GrowableErrors()
        tracker.ensure(4)
        assert len(tracker) == 5

    def test_negative_id_rejected(self):
        tracker = _GrowableErrors()
        with pytest.raises(IndexError):
            tracker.ensure(-1)

    def test_snapshot_is_copy(self):
        tracker = _GrowableErrors()
        tracker.set(0, 0.5)
        snap = tracker.snapshot()
        snap[0] = 99.0
        assert tracker.get(0) == 0.5


class TestCredenceWeights:
    def test_weights_sum_to_one(self):
        weights = AdaptiveWeights()
        w_u, w_s = weights.credence(0, 0)
        assert w_u + w_s == pytest.approx(1.0)

    def test_new_entities_split_evenly(self):
        weights = AdaptiveWeights()
        assert weights.credence(0, 0) == (0.5, 0.5)

    def test_inaccurate_side_gets_more_weight(self):
        """An inaccurate user moves a lot w.r.t. an accurate service (paper
        Section IV-C-3)."""
        weights = AdaptiveWeights()
        weights.register_user(0)
        weights.register_service(0)
        # Make the service accurate (error 0.01), keep the user at 1.0.
        weights._service_errors.set(0, 0.01)
        w_u, w_s = weights.credence(0, 0)
        assert w_u > 0.9
        assert w_s < 0.1

    def test_both_converged_split_evenly(self):
        weights = AdaptiveWeights()
        weights._user_errors.set(0, 0.0)
        weights._service_errors.set(0, 0.0)
        assert weights.credence(0, 0) == (0.5, 0.5)

    @given(e_u=errors, e_s=errors)
    @settings(max_examples=200)
    def test_weights_valid_for_any_errors(self, e_u, e_s):
        weights = AdaptiveWeights()
        weights._user_errors.set(0, e_u)
        weights._service_errors.set(0, e_s)
        w_u, w_s = weights.credence(0, 0)
        assert 0.0 <= w_u <= 1.0
        assert 0.0 <= w_s <= 1.0
        assert w_u + w_s == pytest.approx(1.0)


class TestObserve:
    def test_returns_pre_update_weights(self):
        weights = AdaptiveWeights(beta=0.3)
        expected = weights.credence(0, 0)
        returned = weights.observe(0, 0, sample_error=0.5)
        assert returned == expected

    def test_ema_moves_toward_sample_error(self):
        weights = AdaptiveWeights(beta=0.3)
        before = weights.user_error(0)
        weights.observe(0, 0, sample_error=0.0)
        after = weights.user_error(0)
        assert after < before  # error 0 pulls the tracker down

    def test_ema_formula_exact(self):
        """Eqs. 13-14 verified numerically."""
        weights = AdaptiveWeights(beta=0.4)
        weights._user_errors.set(2, 0.8)
        weights._service_errors.set(3, 0.2)
        w_u = 0.8 / 1.0
        w_s = 0.2 / 1.0
        weights.observe(2, 3, sample_error=0.5)
        assert weights.user_error(2) == pytest.approx(
            0.4 * w_u * 0.5 + (1 - 0.4 * w_u) * 0.8
        )
        assert weights.service_error(3) == pytest.approx(
            0.4 * w_s * 0.5 + (1 - 0.4 * w_s) * 0.2
        )

    def test_negative_error_rejected(self):
        weights = AdaptiveWeights()
        with pytest.raises(ValueError, match="non-negative"):
            weights.observe(0, 0, sample_error=-0.1)

    @given(samples=st.lists(errors, min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_trackers_stay_in_convex_hull(self, samples):
        """EMA keeps each tracker inside [min(seen, init), max(seen, init)]."""
        weights = AdaptiveWeights(beta=0.3, init_error=1.0)
        for sample in samples:
            weights.observe(0, 0, sample)
        low = min(min(samples), 1.0)
        high = max(max(samples), 1.0)
        assert low - 1e-12 <= weights.user_error(0) <= high + 1e-12
        assert low - 1e-12 <= weights.service_error(0) <= high + 1e-12

    def test_repeated_zero_error_converges_to_zero(self):
        weights = AdaptiveWeights(beta=0.5)
        for __ in range(200):
            weights.observe(0, 0, 0.0)
        assert weights.user_error(0) < 1e-3

    def test_reset_user_and_service(self):
        weights = AdaptiveWeights()
        weights.observe(0, 0, 0.0)
        weights.reset_user(0)
        weights.reset_service(0)
        assert weights.user_error(0) == 1.0
        assert weights.service_error(0) == 1.0

    def test_beta_zero_freezes_errors(self):
        weights = AdaptiveWeights(beta=0.0)
        weights.observe(0, 0, 0.0)
        assert weights.user_error(0) == 1.0

    def test_counts(self):
        weights = AdaptiveWeights()
        weights.register_user(4)
        weights.register_service(9)
        assert weights.n_users == 5
        assert weights.n_services == 10

    def test_invalid_beta_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveWeights(beta=1.5)


class TestReadPathPurity:
    """Regression: read-only queries must not grow the trackers.

    ``user_error``/``service_error``/``credence`` are called on the
    prediction path; before the fix an unknown-id read allocated tracker
    rows, so merely *asking* about entity 10**6 grew state by megabytes."""

    def test_user_error_does_not_register(self):
        weights = AdaptiveWeights(init_error=1.0)
        assert weights.user_error(999) == 1.0
        assert weights.n_users == 0

    def test_service_error_does_not_register(self):
        weights = AdaptiveWeights(init_error=1.0)
        assert weights.service_error(999) == 1.0
        assert weights.n_services == 0

    def test_credence_does_not_register(self):
        weights = AdaptiveWeights()
        assert weights.credence(12345, 67890) == (0.5, 0.5)
        assert weights.n_users == 0
        assert weights.n_services == 0

    def test_observe_still_registers(self):
        weights = AdaptiveWeights()
        weights.observe(4, 7, sample_error=0.5)
        assert weights.n_users == 5
        assert weights.n_services == 8
