"""Tests for workflows, tasks, and bindings."""

import pytest

from repro.adaptation import AbstractTask, ServiceBinding, Workflow


def make_workflow():
    tasks = [
        AbstractTask(name="A", task_type="weather"),
        AbstractTask(name="B", task_type="payment"),
        AbstractTask(name="C", task_type="shipping"),
    ]
    return Workflow(name="pipeline", tasks=tasks)


class TestAbstractTask:
    def test_fields(self):
        task = AbstractTask(name="A", task_type="weather")
        assert task.task_type == "weather"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            AbstractTask(name="", task_type="x")

    def test_empty_type_rejected(self):
        with pytest.raises(ValueError):
            AbstractTask(name="A", task_type="")


class TestServiceBinding:
    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            ServiceBinding(task_name="A", service_id=-1)


class TestWorkflow:
    def test_empty_workflow_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Workflow(name="w", tasks=[])

    def test_duplicate_task_names_rejected(self):
        tasks = [AbstractTask("A", "x"), AbstractTask("A", "y")]
        with pytest.raises(ValueError, match="duplicate"):
            Workflow(name="w", tasks=tasks)

    def test_task_lookup(self):
        workflow = make_workflow()
        assert workflow.task("B").task_type == "payment"
        with pytest.raises(KeyError):
            workflow.task("Z")

    def test_bind_and_lookup(self):
        workflow = make_workflow()
        binding = workflow.bind("A", 42, at=10.0)
        assert binding.bound_at == 10.0
        assert workflow.bound_service("A") == 42

    def test_rebind_replaces(self):
        workflow = make_workflow()
        workflow.bind("A", 1)
        workflow.bind("A", 2)
        assert workflow.bound_service("A") == 2

    def test_bind_unknown_task_rejected(self):
        with pytest.raises(KeyError):
            make_workflow().bind("Z", 1)

    def test_unbound_lookup_raises(self):
        with pytest.raises(KeyError, match="not bound"):
            make_workflow().binding("A")

    def test_is_fully_bound(self):
        workflow = make_workflow()
        assert not workflow.is_fully_bound()
        for k, task in enumerate(workflow.tasks):
            workflow.bind(task.name, k)
        assert workflow.is_fully_bound()

    def test_working_services_in_task_order(self):
        workflow = make_workflow()
        workflow.bind("A", 5)
        workflow.bind("B", 3)
        workflow.bind("C", 9)
        assert workflow.working_services() == [5, 3, 9]

    def test_bindings_snapshot_is_copy(self):
        workflow = make_workflow()
        workflow.bind("A", 5)
        snapshot = workflow.bindings()
        snapshot["A"] = ServiceBinding(task_name="A", service_id=99)
        assert workflow.bound_service("A") == 5
