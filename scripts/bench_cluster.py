#!/usr/bin/env python
"""Fleet throughput scaling: 1/2/4 shards behind the cluster router.

Each shard is a real OS process (``python -m repro.cluster.shard``) with
its own durable WAL; the router runs in this process and fans traffic
out.  The workload is a closed-loop mixed stream — observations (durable,
fsync-bound) interleaved with batch predictions — partitioned by home
shard, with one driver thread per shard so every shard's disk queue stays
busy.  Throughput is total completed operations / wall-clock for the
whole fleet, and the figure that matters is the *speedup* of the 2- and
4-shard fleets over the single shard.

**Disk-latency simulation.**  Durable ingest is fsync-bound in
production, but CI hardware commits an fsync in ~0.15 ms (and has one
core), which would make this bench measure Python dispatch instead of
the I/O parallelism sharding actually buys.  The WAL's documented
``fsync_delay`` knob adds a fixed sleep per fsync to model a production
disk (default here: 20 ms — spinning media / networked block storage
commit latency); each shard process serializes its own WAL appends while
N shards overlap theirs — exactly the effect horizontal scale-out exists
to exploit.  The knob is recorded in the output
(``config.wal_fsync_delay_ms``) so the measurement's provenance is
explicit.  Smoke runs clamp the delay to 2 ms to stay fast; at that
setting single-core dispatch dominates and the speedup gate is
advisory only.

Usage::

    PYTHONPATH=src python scripts/bench_cluster.py              # full sweep -> BENCH_cluster.json
    PYTHONPATH=src python scripts/bench_cluster.py --smoke      # tiny sweep, validate only
    PYTHONPATH=src python scripts/bench_cluster.py --validate   # schema-check existing file
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.cluster import ClusterRouter, PlacementTable, ShardSpec
from repro.server.client import PredictionClient, PredictionServiceError

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_cluster.json"
SRC_ROOT = REPO_ROOT / "src"


def git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:  # noqa: BLE001 — benches must run outside git too
        return "unknown"


class ShardProcess:
    """One shard subprocess, managed for the duration of a fleet run."""

    def __init__(self, name: str, data_dir: str, fsync_delay: float) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_ROOT) + (
            os.pathsep + env["PYTHONPATH"] if "PYTHONPATH" in env else ""
        )
        self.name = name
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cluster.shard",
                "--name", name,
                "--data-dir", data_dir,
                "--binary-port", "-1",
                "--fsync-delay", str(fsync_delay),
                "--checkpoint-interval", "100000",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        line = self.proc.stdout.readline()
        info = json.loads(line)
        if not info.get("ready"):
            raise RuntimeError(f"shard {name} failed to start: {info}")
        self.address = (info["address"][0], int(info["address"][1]))

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=5.0)


def run_fleet(
    n_shards: int,
    records_per_shard: int,
    fsync_delay: float,
    seed: int,
    n_users: int,
    n_services: int,
    predict_every: int,
) -> dict:
    """Run one fleet size; returns its measurement block."""
    rng = np.random.default_rng(seed)
    with tempfile.TemporaryDirectory(prefix="qos-bench-cluster-") as root:
        shards = [
            ShardProcess(
                f"s{index}", os.path.join(root, f"s{index}"), fsync_delay
            )
            for index in range(n_shards)
        ]
        table = PlacementTable(
            [
                ShardSpec(name=shard.name, addresses=(shard.address,))
                for shard in shards
            ]
        )
        router = ClusterRouter(table)
        router.start()
        try:
            # Pre-partition the workload: per shard, a substream of users
            # it owns, so each driver thread keeps exactly one shard's
            # WAL busy (closed loop, no cross-shard head-of-line).
            users_by_shard: dict[str, list[int]] = {
                shard.name: [] for shard in shards
            }
            for user_id in range(n_users):
                users_by_shard[table.owner_of("user", user_id).name].append(
                    user_id
                )
            plans = []
            for shard in shards:
                owned = users_by_shard[shard.name]
                if not owned:
                    continue
                picks = rng.integers(0, len(owned), size=records_per_shard)
                services = rng.integers(0, n_services, size=records_per_shard)
                values = rng.uniform(0.05, 5.0, size=records_per_shard)
                plans.append(
                    (
                        shard.name,
                        [owned[p] for p in picks],
                        services.tolist(),
                        values.tolist(),
                    )
                )

            counts = {"observations": 0, "predictions": 0, "errors": 0}
            counts_lock = threading.Lock()
            candidate_pool = list(range(min(8, n_services)))

            def drive(plan) -> None:
                name, users, services, values = plan
                client = PredictionClient(router.address, retries=0)
                observations = predictions = errors = 0
                try:
                    for k, (u, s, v) in enumerate(
                        zip(users, services, values)
                    ):
                        try:
                            client.report_observation(u, s, v, float(k))
                            observations += 1
                            if (k + 1) % predict_every == 0:
                                client.predict_candidates_detailed(
                                    u, candidate_pool
                                )
                                predictions += 1
                        except PredictionServiceError:
                            errors += 1
                finally:
                    client.close()
                with counts_lock:
                    counts["observations"] += observations
                    counts["predictions"] += predictions
                    counts["errors"] += errors

            threads = [
                threading.Thread(target=drive, args=(plan,), daemon=True)
                for plan in plans
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
        finally:
            router.stop()
            for shard in shards:
                shard.stop()
    operations = counts["observations"] + counts["predictions"]
    return {
        "shards": n_shards,
        "driver_threads": len(plans),
        "observations": counts["observations"],
        "predictions": counts["predictions"],
        "errors": counts["errors"],
        "wall_seconds": round(elapsed, 4),
        "throughput_ops_per_s": round(operations / elapsed, 2),
    }


def validate_record(record: dict) -> list[str]:
    """Schema check for one BENCH_cluster.json record; returns problems.

    The file interleaves two record shapes — the fleet-scaling sweep
    from this script and live-migration drills appended by
    ``bench_migration.py`` — discriminated by the ``"drill"`` key.
    """
    if record.get("drill") == "migration":
        import bench_migration

        return bench_migration.validate_record(record)
    problems = []

    def require(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    require(isinstance(record.get("timestamp"), str), "missing timestamp")
    require(isinstance(record.get("revision"), str), "missing revision")
    config = record.get("config")
    require(isinstance(config, dict), "missing config")
    if isinstance(config, dict):
        for key in (
            "records_per_shard",
            "n_users",
            "n_services",
            "predict_every",
            "wal_fsync_delay_ms",
            "seed",
        ):
            require(key in config, f"config.{key} missing")
    fleets = record.get("fleets")
    require(isinstance(fleets, list) and fleets, "missing fleets")
    single = None
    for k, fleet in enumerate(fleets or []):
        if not isinstance(fleet, dict):
            problems.append(f"fleets[{k}] not an object")
            continue
        for key in (
            "shards",
            "observations",
            "predictions",
            "errors",
            "wall_seconds",
            "throughput_ops_per_s",
            "speedup_vs_single",
        ):
            require(key in fleet, f"fleets[{k}].{key} missing")
        if fleet.get("shards") == 1:
            single = fleet
    require(single is not None, "no single-shard fleet in record")
    scaling = record.get("scaling_ok")
    require(isinstance(scaling, bool), "missing scaling_ok")
    two = next(
        (f for f in (fleets or []) if isinstance(f, dict) and f.get("shards") == 2),
        None,
    )
    if two is not None and isinstance(two.get("speedup_vs_single"), (int, float)):
        require(
            bool(scaling) == (two["speedup_vs_single"] >= 1.7),
            "scaling_ok inconsistent with the 2-shard speedup",
        )
    return problems


def validate_file(path: Path) -> None:
    records = json.loads(path.read_text())
    if not isinstance(records, list) or not records:
        print(f"{path}: expected a non-empty JSON array")
        raise SystemExit(1)
    failures = 0
    for index, record in enumerate(records):
        for problem in validate_record(record):
            print(f"{path}[{index}]: {problem}")
            failures += 1
    if failures:
        raise SystemExit(1)
    print(f"{path}: {len(records)} record(s) OK")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records-per-shard", type=int, default=400,
                        help="observations per driver thread (default 400)")
    parser.add_argument("--fleets", type=int, nargs="+", default=[1, 2, 4],
                        help="fleet sizes to sweep (default: 1 2 4)")
    parser.add_argument("--fsync-delay", type=float, default=0.02,
                        help="simulated disk commit latency per WAL fsync, "
                             "seconds (default 0.02)")
    parser.add_argument("--n-users", type=int, default=64)
    parser.add_argument("--n-services", type=int, default=24)
    parser.add_argument("--predict-every", type=int, default=10,
                        help="batch prediction per this many observations")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--note", default="")
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep; validate the record, do not append")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check the existing results file and exit")
    args = parser.parse_args()

    if args.validate:
        validate_file(args.output or RESULTS_PATH)
        return 0

    if args.smoke:
        args.records_per_shard = min(args.records_per_shard, 60)
        args.fleets = [1, 2]
        args.fsync_delay = min(args.fsync_delay, 0.002)

    fleets = []
    for n_shards in args.fleets:
        print(f"fleet of {n_shards} shard(s)...", flush=True)
        fleet = run_fleet(
            n_shards,
            args.records_per_shard,
            args.fsync_delay,
            args.seed,
            args.n_users,
            args.n_services,
            args.predict_every,
        )
        fleets.append(fleet)
        print(
            f"  {fleet['observations']} obs + {fleet['predictions']} pred "
            f"in {fleet['wall_seconds']}s -> "
            f"{fleet['throughput_ops_per_s']} ops/s "
            f"({fleet['errors']} errors)",
            flush=True,
        )
    single = next(f for f in fleets if f["shards"] == 1)
    for fleet in fleets:
        fleet["speedup_vs_single"] = round(
            fleet["throughput_ops_per_s"] / single["throughput_ops_per_s"], 3
        )
    two = next((f for f in fleets if f["shards"] == 2), None)
    scaling_ok = two is not None and two["speedup_vs_single"] >= 1.7

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "revision": git_revision(),
        "note": args.note or ("smoke" if args.smoke else ""),
        "config": {
            "records_per_shard": args.records_per_shard,
            "n_users": args.n_users,
            "n_services": args.n_services,
            "predict_every": args.predict_every,
            "wal_fsync_delay_ms": args.fsync_delay * 1000.0,
            "seed": args.seed,
        },
        "fleets": fleets,
        "scaling_ok": scaling_ok,
    }
    problems = validate_record(record)
    if problems:
        for problem in problems:
            print(f"invalid record: {problem}")
        return 1
    for fleet in fleets:
        print(
            f"{fleet['shards']} shard(s): {fleet['throughput_ops_per_s']} "
            f"ops/s ({fleet['speedup_vs_single']}x vs single)"
        )
    if args.smoke and args.output is None:
        if not scaling_ok:
            print("smoke NOTE: 2-shard speedup below 1.7x at smoke scale")
        print("smoke OK (record validated, not appended)")
        return 0
    if not scaling_ok:
        print("FAIL: 2-shard fleet did not reach 1.7x single-shard throughput")
        return 1
    path = args.output or RESULTS_PATH
    history = json.loads(path.read_text()) if path.exists() else []
    history.append(record)
    path.write_text(json.dumps(history, indent=2) + "\n")
    print(f"recorded to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
