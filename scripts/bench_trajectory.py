#!/usr/bin/env python
"""Track replay-kernel throughput across commits.

Measures replay steps/sec for both kernels on the shared warm-model
configuration (the same one ``benchmarks/test_bench_core_throughput.py``
uses: 100 users x 200 services, 5,000 stored samples, 1,000-step batches)
and appends one JSON record per run to ``BENCH_replay.json`` at the repo
root.  Run it before and after performance work to build a trajectory::

    PYTHONPATH=src python scripts/bench_trajectory.py
    PYTHONPATH=src python scripts/bench_trajectory.py --seconds 5 --note "tuned block loop"

Each record carries the git revision, kernel, steps/sec, the speedup of
the vectorized kernel over the scalar one in the same run, and the
observability overhead (vectorized throughput with the metrics registry
enabled vs disabled — the instrumentation budget is < 5%).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.core import AdaptiveMatrixFactorization, AMFConfig, ParallelReplayEngine
from repro.datasets.schema import QoSRecord
from repro.observability import set_enabled

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_replay.json"

N_USERS = 100
N_SERVICES = 200
N_SAMPLES = 5000
BATCH = 1000


def _warm_model(kernel: str, seed: int = 0) -> AdaptiveMatrixFactorization:
    model = AdaptiveMatrixFactorization(
        AMFConfig.for_response_time(kernel=kernel), rng=seed
    )
    rng = np.random.default_rng(seed)
    model.observe_many(
        QoSRecord(
            timestamp=float(k),
            user_id=int(rng.integers(N_USERS)),
            service_id=int(rng.integers(N_SERVICES)),
            value=float(rng.uniform(0.05, 5.0)),
        )
        for k in range(N_SAMPLES)
    )
    return model


def measure_steps_per_sec(kernel: str, seconds: float) -> float:
    """Replay steps/sec for one kernel, measured over ~``seconds``."""
    model = _warm_model(kernel)
    model.replay_many(now=0.0, count=BATCH)  # warmup
    steps = 0
    started = time.perf_counter()
    while time.perf_counter() - started < seconds:
        model.replay_many(now=0.0, count=BATCH)
        steps += BATCH
    elapsed = time.perf_counter() - started
    return steps / elapsed


def measure_parallel(worker_counts: list[int], seconds: float) -> dict:
    """Parallel-engine steps/sec per worker count, plus a parity check.

    The speedup column is only meaningful on a machine with that many
    cores — ``cpu_count`` is recorded so a reader can tell a contended
    single-core box (where the barrier overhead *costs* throughput) from a
    true multi-core run.  The parity flag is hardware-independent: the
    trained factors, credence trackers, and RNG stream must equal the
    single-core vectorized kernel's bit for bit.
    """
    import multiprocessing
    import os

    rates: dict[str, float] = {}
    for n_workers in worker_counts:
        model = _warm_model("vectorized")
        with ParallelReplayEngine(model, n_workers=n_workers) as engine:
            engine.replay_many(now=0.0, count=BATCH)  # warmup
            steps = 0
            started = time.perf_counter()
            while time.perf_counter() - started < seconds:
                engine.replay_many(now=0.0, count=BATCH)
                steps += BATCH
            elapsed = time.perf_counter() - started
        rates[str(n_workers)] = steps / elapsed

    # Bit-exact parity: same seed, same draws, factors must be identical.
    reference = _warm_model("vectorized")
    candidate = _warm_model("vectorized")
    with ParallelReplayEngine(candidate, n_workers=max(worker_counts)):
        for __ in range(3):
            reference.replay_many(now=0.0, count=BATCH)
            candidate.replay_many(now=0.0, count=BATCH, kernel="parallel")
    parity = bool(
        np.array_equal(
            reference._user_factors.view(), candidate._user_factors.view()
        )
        and np.array_equal(
            reference._service_factors.view(), candidate._service_factors.view()
        )
        and reference._rng.bit_generator.state
        == candidate._rng.bit_generator.state
    )
    return {
        "steps_per_sec": {k: round(v, 1) for k, v in rates.items()},
        "bit_exact_parity": parity,
        "cpu_count": os.cpu_count(),
        "start_method": multiprocessing.get_start_method(),
    }


def measure_metrics_overhead(seconds: float) -> dict:
    """Vectorized throughput with the metrics registry on vs off.

    The observability layer records per *batch*, not per step, so the
    overhead target is well under 5% — this measurement is what holds the
    instrumentation to that budget across commits.
    """
    rate_on = measure_steps_per_sec("vectorized", seconds)
    set_enabled(False)
    try:
        rate_off = measure_steps_per_sec("vectorized", seconds)
    finally:
        set_enabled(True)
    overhead = (rate_off - rate_on) / rate_off * 100.0 if rate_off > 0 else 0.0
    return {
        "vectorized_on": round(rate_on, 1),
        "vectorized_off": round(rate_off, 1),
        "overhead_percent": round(overhead, 2),
    }


def git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def append_record(record: dict, path: Path) -> None:
    """Append ``record`` to the JSON array at ``path``."""
    history: list[dict] = []
    if path.exists():
        history = json.loads(path.read_text())
        if not isinstance(history, list):
            raise SystemExit(f"{path} does not hold a JSON array")
    history.append(record)
    path.write_text(json.dumps(history, indent=2) + "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seconds", type=float, default=2.0, help="measurement window per kernel"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        default="1,2,4",
        help=(
            "comma-separated worker counts for the parallel engine "
            "(empty string skips the parallel measurement)"
        ),
    )
    parser.add_argument("--note", default="", help="free-form label for the record")
    parser.add_argument(
        "--output", type=Path, default=RESULTS_PATH, help="result file to append to"
    )
    args = parser.parse_args()

    rates = {
        kernel: measure_steps_per_sec(kernel, args.seconds)
        for kernel in ("scalar", "vectorized")
    }
    metrics_overhead = measure_metrics_overhead(args.seconds)
    worker_counts = [int(w) for w in args.workers.split(",") if w.strip()]
    parallel = measure_parallel(worker_counts, args.seconds) if worker_counts else None
    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "revision": git_revision(),
        "config": {
            "n_users": N_USERS,
            "n_services": N_SERVICES,
            "n_samples": N_SAMPLES,
            "batch": BATCH,
            "seed": args.seed,
        },
        "steps_per_sec": {k: round(v, 1) for k, v in rates.items()},
        "speedup_vectorized": round(rates["vectorized"] / rates["scalar"], 2),
        "metrics_overhead": metrics_overhead,
        "parallel": parallel,
        "note": args.note,
    }
    append_record(record, args.output)

    for kernel, rate in rates.items():
        print(f"{kernel:>10}: {rate:>12,.0f} replay steps/sec")
    print(f"   speedup: {record['speedup_vectorized']:.2f}x (vectorized / scalar)")
    if parallel is not None:
        for n_workers, rate in parallel["steps_per_sec"].items():
            print(f"parallel x{n_workers}: {rate:>12,.0f} replay steps/sec")
        print(
            f"    parity: {'bit-exact' if parallel['bit_exact_parity'] else 'DRIFT'}"
            f" (cpu_count={parallel['cpu_count']})"
        )
    print(
        f"   metrics: {metrics_overhead['overhead_percent']:+.2f}% overhead "
        f"(on {metrics_overhead['vectorized_on']:,.0f} / "
        f"off {metrics_overhead['vectorized_off']:,.0f} steps/sec)"
    )
    print(f"appended to {args.output}")


if __name__ == "__main__":
    main()
