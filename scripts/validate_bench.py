#!/usr/bin/env python
"""Unified schema validation for every BENCH_*.json results file.

Each benchmark script appends free-form JSON records to its own history
file; a schema typo (renamed key, dropped field, stringified number)
silently poisons every later comparison against that history.  This
gatekeeper validates all of them in one pass so CI has a single step —
and a single exit code — guarding the whole results corpus::

    PYTHONPATH=src python scripts/validate_bench.py            # all files
    PYTHONPATH=src python scripts/validate_bench.py --only serving,lifecycle
    PYTHONPATH=src python scripts/validate_bench.py --strict   # missing file fails

Serving and lifecycle records delegate to the ``validate_record`` of
their producing script (one source of truth per schema); replay and
robustness records are validated natively here.  ``BENCH_robustness.json``
interleaves two record shapes — the poison-level sweep from
``bench_robustness.py`` and failover drills appended by
``chaos_check.py --bench-out`` — discriminated by the ``"drill"`` key.
``BENCH_cluster.json`` likewise interleaves the fleet-scaling sweep from
``bench_cluster.py`` with live-migration records from
``bench_migration.py`` (``"drill": "migration"``); its delegated
validator dispatches between them.  Missing files are skipped by default (benches are grown one PR at a
time); ``--strict`` turns a missing file into a failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPTS_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(SCRIPTS_DIR))

import bench_cluster  # noqa: E402
import bench_lifecycle  # noqa: E402
import bench_serving  # noqa: E402


def _require(problems: list[str], condition: bool, message: str) -> None:
    if not condition:
        problems.append(message)


def validate_replay_record(record: dict) -> list[str]:
    """One BENCH_replay.json record (``bench_replay.py``)."""
    problems: list[str] = []
    _require(problems, isinstance(record.get("timestamp"), str), "missing timestamp")
    _require(problems, isinstance(record.get("revision"), str), "missing revision")
    config = record.get("config")
    _require(problems, isinstance(config, dict), "missing config")
    if isinstance(config, dict):
        for key in ("n_users", "n_services", "n_samples", "batch", "seed"):
            _require(problems, key in config, f"config.{key} missing")
    rates = record.get("steps_per_sec")
    _require(problems, isinstance(rates, dict), "missing steps_per_sec")
    if isinstance(rates, dict):
        for key in ("scalar", "vectorized"):
            _require(
                problems,
                isinstance(rates.get(key), (int, float)),
                f"steps_per_sec.{key} missing",
            )
    _require(
        problems,
        isinstance(record.get("speedup_vectorized"), (int, float)),
        "missing speedup_vectorized",
    )
    return problems


def _validate_gate_block(problems: list[str], block, label: str) -> None:
    _require(problems, isinstance(block, dict), f"{label} missing")
    if not isinstance(block, dict):
        return
    for key in ("mae", "npre", "quarantined"):
        _require(
            problems,
            isinstance(block.get(key), (int, float)),
            f"{label}.{key} missing",
        )


def validate_robustness_record(record: dict) -> list[str]:
    """One BENCH_robustness.json record — either of its two shapes."""
    problems: list[str] = []
    _require(problems, isinstance(record.get("timestamp"), str), "missing timestamp")
    _require(problems, isinstance(record.get("revision"), str), "missing revision")
    _require(problems, isinstance(record.get("pass"), bool), "missing pass")
    if "drill" in record:  # chaos_check --bench-out failover shape
        _require(
            problems, record.get("drill") == "failover", "unknown drill kind"
        )
        for key in (
            "records",
            "kill_after",
            "time_to_promote_s",
            "lag_during_partition",
            "catchup_seconds_after_heal",
            "promoted_epoch",
        ):
            _require(
                problems,
                isinstance(record.get(key), (int, float)),
                f"{key} missing",
            )
        return problems
    # bench_robustness.py poison-level sweep shape.
    _require(
        problems, isinstance(record.get("records"), int), "missing records"
    )
    levels = record.get("levels")
    _require(problems, isinstance(levels, dict) and levels, "missing levels")
    if isinstance(levels, dict):
        for level, pair in levels.items():
            _require(
                problems, isinstance(pair, dict), f"levels[{level}] not a dict"
            )
            if isinstance(pair, dict):
                _validate_gate_block(
                    problems, pair.get("gate_off"), f"levels[{level}].gate_off"
                )
                _validate_gate_block(
                    problems, pair.get("gate_on"), f"levels[{level}].gate_on"
                )
    return problems


SUITES = {
    "cluster": (REPO_ROOT / "BENCH_cluster.json", bench_cluster.validate_record),
    "replay": (REPO_ROOT / "BENCH_replay.json", validate_replay_record),
    "robustness": (
        REPO_ROOT / "BENCH_robustness.json",
        validate_robustness_record,
    ),
    "serving": (REPO_ROOT / "BENCH_serving.json", bench_serving.validate_record),
    "lifecycle": (
        REPO_ROOT / "BENCH_lifecycle.json",
        bench_lifecycle.validate_record,
    ),
}


def validate_file(path: Path, validator) -> int:
    """Validate one history file; print problems; return their count."""
    try:
        history = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{path.name}: unreadable ({exc})")
        return 1
    if not isinstance(history, list) or not history:
        print(f"{path.name}: must hold a non-empty JSON array")
        return 1
    failures = 0
    for index, record in enumerate(history):
        if not isinstance(record, dict):
            print(f"{path.name}[{index}]: not an object")
            failures += 1
            continue
        for problem in validator(record):
            print(f"{path.name}[{index}]: {problem}")
            failures += 1
    if not failures:
        print(f"{path.name}: {len(history)} record(s) OK")
    return failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        default=None,
        help="comma-separated subset of suites "
        f"({','.join(sorted(SUITES))}); default: all",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="a missing results file is a failure instead of a skip",
    )
    args = parser.parse_args()

    names = (
        [name.strip() for name in args.only.split(",") if name.strip()]
        if args.only
        else sorted(SUITES)
    )
    unknown = [name for name in names if name not in SUITES]
    if unknown:
        raise SystemExit(f"unknown suite(s): {', '.join(unknown)}")

    failures = 0
    checked = 0
    for name in names:
        path, validator = SUITES[name]
        if not path.exists():
            if args.strict:
                print(f"{path.name}: missing (strict)")
                failures += 1
            else:
                print(f"{path.name}: not present, skipped")
            continue
        failures += validate_file(path, validator)
        checked += 1
    if failures:
        raise SystemExit(f"{failures} schema problem(s) across {checked} file(s)")
    print(f"all bench schemas OK ({checked} file(s) checked)")


if __name__ == "__main__":
    main()
