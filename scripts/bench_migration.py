#!/usr/bin/env python
"""Live 3→4 shard rebalance: migration throughput, read tail, MAE parity.

A 3-shard fleet ingests a QoS stream, then a fourth shard joins and a
live migration re-homes every entity whose rendezvous owner changes —
while reader threads keep hammering predictions through the router.
Three things are measured:

* **Migration throughput** — entities re-homed per second, end to end
  (export → idempotent import → delete → override), from the
  coordinator's own accounting.
* **Read tail during migration** — p50/p99 latency of router predictions
  issued concurrently with the migration, plus how many reads hit the
  brief ``entity_migrating`` 503 commit window and had to retry.
* **Accuracy parity** — the per-sample prediction-error stream (the
  pre-update error each observation reports) must be **bit-identical**
  to a single-shard server fed the exact same stream with no migration
  at all.  Windowed MAE is derived from those streams, so parity is
  checked at the strongest possible granularity: every float equal.

Parity is engineered, not hoped for: the stream's users are chosen so
the 3-shard table homes them all on one shard (same model, same RNG
draw order as the single-server baseline), and each user observes a
disjoint service set so service rows co-move with their one observer.
Writes pause during the migration window (reads do not); the stream
resumes — through the new 4-shard table — once the rebalance commits.

Results append to ``BENCH_cluster.json`` as ``{"drill": "migration"}``
records, discriminated from the throughput-scaling records by
``bench_cluster.validate_record`` / ``validate_bench.py``.

Usage::

    PYTHONPATH=src python scripts/bench_migration.py            # full run -> BENCH_cluster.json
    PYTHONPATH=src python scripts/bench_migration.py --smoke    # tiny run, validate only
    PYTHONPATH=src python scripts/bench_migration.py --validate # schema-check existing file
"""

from __future__ import annotations

import argparse
import json
import os
import random
import subprocess
import sys
import tempfile
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_cluster.json"
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster import ClusterRouter, PlacementTable, ShardSpec  # noqa: E402
from repro.server.app import PredictionServer  # noqa: E402
from repro.server.client import (  # noqa: E402
    PredictionClient,
    PredictionServiceError,
)

MAE_WINDOW = 100


def git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:  # noqa: BLE001 — benches must run outside git too
        return "unknown"


def pick_users(table: PlacementTable, home: str, n_users: int) -> list[int]:
    """First ``n_users`` ids the table homes on ``home``.

    Keeping every bench user on one shard makes that shard's model see
    the same entities in the same order as the single-server baseline,
    so both draw identical factor initializations — the precondition
    for bit-exact parity.
    """
    users, candidate = [], 0
    while len(users) < n_users:
        if table.owner_of("user", candidate).name == home:
            users.append(candidate)
        candidate += 1
        if candidate > 100 * n_users:
            raise RuntimeError(f"could not find {n_users} users on {home}")
    return users


def make_stream(
    users: list[int], services_per_user: int, rounds: int, seed: int
) -> list[tuple[int, int, float, float]]:
    """(user, service, value, timestamp) rows; disjoint services per user."""
    rng = random.Random(seed)
    rows, tick = [], 0.0
    for _ in range(rounds):
        for index, user_id in enumerate(users):
            base = index * services_per_user
            for service_id in range(base, base + services_per_user):
                tick += 1.0
                rows.append(
                    (user_id, service_id, round(rng.random() * 3 + 0.2, 3), tick)
                )
    return rows


def feed(client: PredictionClient, rows) -> list[float]:
    """Report each row; collect its pre-update error (the parity oracle)."""
    errors = []
    for user_id, service_id, value, timestamp in rows:
        errors.append(
            client.report_observation(user_id, service_id, value, timestamp)
        )
    return errors


def windowed_mae(errors: list[float], window: int = MAE_WINDOW) -> float:
    tail = [e for e in errors if e is not None][-window:]
    return sum(tail) / len(tail) if tail else 0.0


def percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return sorted_values[index]


def run_bench(
    n_users: int,
    services_per_user: int,
    rounds: int,
    seed: int,
    batch_entities: int,
    readers: int,
    join_timeout: float,
) -> dict:
    server_args = dict(
        background_replay=False,
        checkpoint_interval=1000,
        binary_port=None,
        lifecycle=True,
    )
    with tempfile.TemporaryDirectory(prefix="qos-bench-migration-") as root:
        # --- 3-shard fleet + single-server baseline --------------------------
        names = ["s0", "s1", "s2"]
        servers = {}
        for index, name in enumerate(names):
            server = PredictionServer(
                rng=seed + index,
                data_dir=os.path.join(root, name),
                **server_args,
            )
            server.start()
            servers[name] = server
        table = PlacementTable(
            [
                ShardSpec(name=name, addresses=(servers[name].address,))
                for name in names
            ]
        )
        baseline_server = PredictionServer(
            rng=seed, data_dir=os.path.join(root, "baseline"), **server_args
        )
        baseline_server.start()

        users = pick_users(table, "s0", n_users)
        half = len(users) * services_per_user * max(1, rounds // 2)
        rows = make_stream(users, services_per_user, rounds, seed)
        phase1, phase2 = rows[:half], rows[half:]

        router = ClusterRouter(table, data_dir=os.path.join(root, "router"))
        router.start()
        client = PredictionClient(router.address, retries=0)
        baseline_client = PredictionClient(baseline_server.address, retries=0)
        try:
            fleet_errors = feed(client, phase1)
            baseline_errors = feed(baseline_client, phase1)

            # --- 4th shard joins; live migration under read traffic ---------
            joining = PredictionServer(
                rng=seed + len(names),
                data_dir=os.path.join(root, "s3"),
                **server_args,
            )
            joining.start()
            servers["s3"] = joining
            target = table.with_shard(
                ShardSpec(name="s3", addresses=(joining.address,))
            )
            movers = sum(
                1 for u in users if target.owner_of("user", u).name != "s0"
            )

            stop_readers = threading.Event()
            latencies_by_reader: list[list[float]] = [[] for _ in range(readers)]
            blocked = [0] * readers
            read_pairs = [
                (user_id, index * services_per_user)
                for index, user_id in enumerate(users)
            ]

            def read_loop(slot: int) -> None:
                reader = PredictionClient(router.address, retries=0)
                try:
                    while not stop_readers.is_set():
                        for user_id, service_id in read_pairs:
                            if stop_readers.is_set():
                                return
                            started = time.perf_counter()
                            try:
                                reader.predict(user_id, service_id)
                            except PredictionServiceError as exc:
                                blocked[slot] += 1
                                hint = getattr(exc, "retry_after", None)
                                time.sleep(hint if hint else 0.05)
                            else:
                                latencies_by_reader[slot].append(
                                    time.perf_counter() - started
                                )
                finally:
                    reader.close()

            threads = [
                threading.Thread(target=read_loop, args=(slot,), daemon=True)
                for slot in range(readers)
            ]
            for thread in threads:
                thread.start()
            coordinator = router.start_migration(
                target, batch_entities=batch_entities
            )
            coordinator.join(timeout=join_timeout)
            stop_readers.set()
            for thread in threads:
                thread.join(timeout=10.0)
            if coordinator.active:
                raise RuntimeError("migration did not finish in time")
            if coordinator.error is not None:
                raise RuntimeError(f"migration errored: {coordinator.error}")
            result = coordinator.result

            # --- stream resumes through the 4-shard table -------------------
            fleet_errors += feed(client, phase2)
            baseline_errors += feed(baseline_client, phase2)
        finally:
            client.close()
            baseline_client.close()
            router.stop()
            for server in servers.values():
                server.stop()
            baseline_server.stop()

    latencies = sorted(lat for slot in latencies_by_reader for lat in slot)
    parity_ok = fleet_errors == baseline_errors
    seconds = float(result["seconds"]) if result else 0.0
    moved = int(result["entities_moved"]) if result else 0
    return {
        "shards_before": len(names),
        "shards_after": len(names) + 1,
        "users": len(users),
        "users_rehomed": movers,
        "entities_moved": moved,
        "batches": int(result["batches"]) if result else 0,
        "sweeps": int(result["sweeps"]) if result else 0,
        "migration_seconds": round(seconds, 4),
        "entities_per_sec": round(moved / seconds, 2) if seconds else 0.0,
        "reads": {
            "count": len(latencies),
            "blocked": sum(blocked),
            "p50_ms": round(percentile(latencies, 0.50) * 1000.0, 3),
            "p99_ms": round(percentile(latencies, 0.99) * 1000.0, 3),
        },
        "mae": {
            "window": MAE_WINDOW,
            "fleet_windowed": windowed_mae(fleet_errors),
            "baseline_windowed": windowed_mae(baseline_errors),
        },
        "samples": len(fleet_errors),
        "parity_ok": parity_ok,
    }


def validate_record(record: dict) -> list[str]:
    """Schema check for one ``{"drill": "migration"}`` record."""
    problems: list[str] = []

    def require(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    require(record.get("drill") == "migration", "drill must be 'migration'")
    require(isinstance(record.get("timestamp"), str), "missing timestamp")
    require(isinstance(record.get("revision"), str), "missing revision")
    require(isinstance(record.get("pass"), bool), "missing pass")
    config = record.get("config")
    require(isinstance(config, dict), "missing config")
    if isinstance(config, dict):
        for key in ("n_users", "services_per_user", "rounds", "seed",
                    "batch_entities", "readers"):
            require(key in config, f"config.{key} missing")
    for key in ("shards_before", "shards_after", "entities_moved",
                "migration_seconds", "entities_per_sec", "samples"):
        require(
            isinstance(record.get(key), (int, float)), f"{key} missing"
        )
    reads = record.get("reads")
    require(isinstance(reads, dict), "missing reads")
    if isinstance(reads, dict):
        for key in ("count", "blocked", "p50_ms", "p99_ms"):
            require(
                isinstance(reads.get(key), (int, float)),
                f"reads.{key} missing",
            )
    mae = record.get("mae")
    require(isinstance(mae, dict), "missing mae")
    if isinstance(mae, dict):
        for key in ("window", "fleet_windowed", "baseline_windowed"):
            require(
                isinstance(mae.get(key), (int, float)), f"mae.{key} missing"
            )
    require(isinstance(record.get("parity_ok"), bool), "missing parity_ok")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-users", type=int, default=48)
    parser.add_argument("--services-per-user", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=4,
                        help="passes over the (user, service) grid; the "
                             "first half stream before the migration, the "
                             "rest after (default 4)")
    parser.add_argument("--batch-entities", type=int, default=16)
    parser.add_argument("--readers", type=int, default=2,
                        help="concurrent reader threads during migration")
    parser.add_argument("--join-timeout", type=float, default=300.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--note", default="")
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny run; validate the record, do not append")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check the existing results file and exit")
    args = parser.parse_args()

    if args.validate:
        import bench_cluster

        bench_cluster.validate_file(args.output or RESULTS_PATH)
        return 0

    if args.smoke:
        args.n_users = min(args.n_users, 16)
        args.services_per_user = min(args.services_per_user, 3)
        args.rounds = min(args.rounds, 2)
        args.batch_entities = min(args.batch_entities, 8)

    print(
        f"3->4 shard rebalance: {args.n_users} users x "
        f"{args.services_per_user} services, {args.rounds} rounds...",
        flush=True,
    )
    measurement = run_bench(
        args.n_users,
        args.services_per_user,
        args.rounds,
        args.seed,
        args.batch_entities,
        args.readers,
        args.join_timeout,
    )
    passed = bool(
        measurement["parity_ok"]
        and measurement["entities_moved"] > 0
        and measurement["reads"]["count"] > 0
    )
    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "revision": git_revision(),
        "note": args.note or ("smoke" if args.smoke else ""),
        "drill": "migration",
        "config": {
            "n_users": args.n_users,
            "services_per_user": args.services_per_user,
            "rounds": args.rounds,
            "seed": args.seed,
            "batch_entities": args.batch_entities,
            "readers": args.readers,
        },
        "pass": passed,
        **measurement,
    }
    problems = validate_record(record)
    if problems:
        for problem in problems:
            print(f"invalid record: {problem}")
        return 1

    reads = measurement["reads"]
    print(
        f"moved {measurement['entities_moved']} entities "
        f"({measurement['users_rehomed']} users re-homed) in "
        f"{measurement['migration_seconds']}s -> "
        f"{measurement['entities_per_sec']} entities/s"
    )
    print(
        f"reads during migration: {reads['count']} ok, {reads['blocked']} "
        f"briefly blocked; p50 {reads['p50_ms']} ms, p99 {reads['p99_ms']} ms"
    )
    print(
        f"windowed MAE (last {MAE_WINDOW}): fleet "
        f"{measurement['mae']['fleet_windowed']:.6f} vs baseline "
        f"{measurement['mae']['baseline_windowed']:.6f} -> parity "
        f"{'OK (bit-identical error stream)' if measurement['parity_ok'] else 'BROKEN'}"
    )
    if not passed:
        print("FAIL: migration bench did not meet its gates")
        return 1
    if args.smoke and args.output is None:
        print("smoke OK (record validated, not appended)")
        return 0
    path = args.output or RESULTS_PATH
    history = json.loads(path.read_text()) if path.exists() else []
    history.append(record)
    path.write_text(json.dumps(history, indent=2) + "\n")
    print(f"recorded to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
