#!/usr/bin/env python
"""Poisoned-stream accuracy benchmark for the outlier gate.

Builds a structured synthetic QoS matrix (rank-2 + multiplicative noise),
streams samples from it with a configurable fraction corrupted (values
multiplied by a large factor — a broken collector, not random line
noise), trains gate-on and gate-off models over the identical stream, and
scores both against the clean ground truth (MAE and NPRE, Section V-B
metrics).  Writes one JSON record per run to ``BENCH_robustness.json`` at
the repo root::

    PYTHONPATH=src python scripts/bench_robustness.py
    PYTHONPATH=src python scripts/bench_robustness.py --records 8000 --seed 3

The acceptance bar (checked and recorded in the ``pass`` field): at every
corruption level >= 5% the gated model must score *strictly better* on
both MAE and NPRE, and on the clean stream the gate must cost nothing
(within ``--clean-tolerance``, default 5% relative).  Exits nonzero when
the bar is missed, so CI can run it as a regression check.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.core import AdaptiveMatrixFactorization, AMFConfig, StreamTrainer
from repro.datasets.schema import QoSRecord
from repro.metrics.errors import mae, npre
from repro.robustness import GateConfig, SanitizerGate

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_robustness.json"

N_USERS = 30
N_SERVICES = 50


def make_truth(rng: np.random.Generator) -> np.ndarray:
    """Rank-2 positive ground truth in a response-time-like range."""
    u = rng.uniform(0.4, 1.8, size=(N_USERS, 2))
    s = rng.uniform(0.3, 2.2, size=(N_SERVICES, 2))
    return np.clip(u @ s.T, 0.05, 15.0)


def make_stream(
    truth: np.ndarray,
    n_records: int,
    corruption: float,
    rng: np.random.Generator,
) -> list[QoSRecord]:
    """Noisy samples of ``truth``; a ``corruption`` fraction is multiplied
    by a large factor (the tail-corruption model of Ye et al., 2006.01287)."""
    records = []
    for k in range(n_records):
        u = int(rng.integers(N_USERS))
        s = int(rng.integers(N_SERVICES))
        value = float(truth[u, s] * (1.0 + rng.normal(0.0, 0.05)))
        if corruption and rng.random() < corruption:
            value *= float(rng.uniform(50.0, 500.0))
        records.append(
            QoSRecord(
                timestamp=float(k), user_id=u, service_id=s,
                value=max(value, 1e-3),
            )
        )
    return records


def score(model: AdaptiveMatrixFactorization, truth: np.ndarray) -> dict:
    predicted = model.predict_matrix()[:N_USERS, :N_SERVICES]
    flat_pred = [float(v) for v in predicted.ravel()]
    flat_true = [float(v) for v in truth.ravel()]
    return {
        "mae": float(mae(flat_pred, flat_true)),
        "npre": float(npre(flat_pred, flat_true)),
    }


def train(records: list[QoSRecord], gate_on: bool, seed: int) -> dict:
    model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=seed)
    gate = (
        SanitizerGate(GateConfig(), model.normalize_value, model.denormalize_value)
        if gate_on
        else None
    )
    trainer = StreamTrainer(model, gate=gate)
    report = trainer.process(records)
    result = score(model, truth=train.truth)
    result["quarantined"] = report.quarantined
    if gate is not None:
        result["gate_counts"] = dict(gate.counts)
    return result


def git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:  # noqa: BLE001 — bench must run outside git too
        return "unknown"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=6000,
                        help="stream length per run (default 6000)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--corruption", type=float, nargs="*",
                        default=[0.0, 0.05, 0.10],
                        help="corrupted-sample fractions to sweep")
    parser.add_argument("--clean-tolerance", type=float, default=0.05,
                        help="max relative MAE penalty the gate may cost on "
                             "a clean stream (default 0.05)")
    parser.add_argument("--note", default="")
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    truth = make_truth(rng)
    train.truth = truth

    levels = {}
    failures: list[str] = []
    for corruption in args.corruption:
        stream = make_stream(
            truth, args.records, corruption,
            np.random.default_rng(args.seed + 1),
        )
        gate_off = train(stream, gate_on=False, seed=args.seed)
        gate_on = train(stream, gate_on=True, seed=args.seed)
        levels[f"{corruption:.2f}"] = {"gate_off": gate_off, "gate_on": gate_on}
        tag = f"corruption {corruption:.0%}"
        print(f"{tag}: gate-off MAE {gate_off['mae']:.4f} NPRE "
              f"{gate_off['npre']:.4f} | gate-on MAE {gate_on['mae']:.4f} "
              f"NPRE {gate_on['npre']:.4f} "
              f"(quarantined {gate_on['quarantined']})")
        if corruption >= 0.05:
            if not (gate_on["mae"] < gate_off["mae"]):
                failures.append(f"{tag}: gate-on MAE not strictly better")
            if not (gate_on["npre"] < gate_off["npre"]):
                failures.append(f"{tag}: gate-on NPRE not strictly better")
        elif corruption == 0.0:
            ceiling = gate_off["mae"] * (1.0 + args.clean_tolerance)
            if gate_on["mae"] > ceiling:
                failures.append(
                    f"clean stream: gate-on MAE {gate_on['mae']:.4f} exceeds "
                    f"gate-off {gate_off['mae']:.4f} by more than "
                    f"{args.clean_tolerance:.0%}"
                )

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "revision": git_revision(),
        "records": args.records,
        "seed": args.seed,
        "note": args.note,
        "clean_tolerance": args.clean_tolerance,
        "levels": levels,
        "pass": not failures,
        "failures": failures,
    }
    history = []
    if RESULTS_PATH.exists():
        history = json.loads(RESULTS_PATH.read_text())
    history.append(record)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")
    print(f"recorded to {RESULTS_PATH}")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
