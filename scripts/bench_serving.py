#!/usr/bin/env python
"""Open-loop serving benchmark: JSON vs binary batch-prediction transports.

Drives an in-process :class:`PredictionServer` with an *open-loop* load
generator — requests are scheduled at a fixed arrival rate regardless of
how fast responses come back, so queueing delay shows up in the latency
numbers instead of silently throttling the offered load (the usual
closed-loop benchmarking mistake).  Users follow a Zipf distribution, the
shape production candidate-ranking traffic actually has: a few hot users
dominate, which is also what makes the version-stamped prediction cache
earn its keep.

For each transport the generator sweeps an offered-rate ladder and
records per-rate achieved QPS and p50/p99 latency; the *sustained* rate
is the highest offered rate the server kept up with (achieved >= 90% of
offered).  One JSON record per run is appended to ``BENCH_serving.json``::

    PYTHONPATH=src python scripts/bench_serving.py
    PYTHONPATH=src python scripts/bench_serving.py --rates 250,500,1000 --duration 4

Modes for CI:

* ``--smoke``    — tiny sweep, record is schema-checked but **not**
  appended (unless ``--output`` is given explicitly); fails if the binary
  transport is not faster than JSON at the shared smoke rate.
* ``--validate`` — schema-check an existing results file and exit.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.server.app import PredictionServer
from repro.server.binary import BinaryConnection
from repro.server.client import PredictionClient

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_serving.json"

N_USERS = 100
N_SERVICES = 200
BATCH_SIZE = 20
ZIPF_S = 1.1


def git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def zipf_users(rng: np.random.Generator, count: int) -> np.ndarray:
    """Zipf-ish user ids over ``N_USERS`` (finite support, exponent s)."""
    weights = 1.0 / np.arange(1, N_USERS + 1) ** ZIPF_S
    return rng.choice(N_USERS, size=count, p=weights / weights.sum())


def warm_server(server: PredictionServer, n: int, seed: int) -> None:
    rng = np.random.default_rng(seed)
    client = PredictionClient(server.address, transport="json")
    observations = [
        {
            "timestamp": float(k),
            "user_id": int(rng.integers(N_USERS)),
            "service_id": int(rng.integers(N_SERVICES)),
            "value": float(rng.uniform(0.05, 5.0)),
        }
        for k in range(n)
    ]
    client.report_observations(observations)
    client.close()


class _Issuer:
    """Per-transport request issuer with one persistent channel per thread."""

    def __init__(self, transport: str, server: PredictionServer):
        self.transport = transport
        self.server = server

    def make_channel(self):
        if self.transport == "binary":
            conn = BinaryConnection(self.server.binary_address)
            conn.connect()
            return conn
        return PredictionClient(self.server.address, transport="json", retries=0)

    def issue(self, channel, user_id: int, service_ids: list[int]) -> None:
        if self.transport == "binary":
            channel.predict_batch(user_id, service_ids)
        else:
            channel.predict_candidates(user_id, service_ids)


def run_round(
    issuer: _Issuer,
    offered_qps: float,
    duration: float,
    threads: int,
    seed: int,
) -> dict:
    """One open-loop round: ``offered_qps`` for ``duration`` seconds.

    Latency for request *k* is completion minus its **scheduled** send
    time ``start + k/rate`` — a server that falls behind accumulates
    queueing delay in its tail instead of hiding it.
    """
    total = max(int(offered_qps * duration), threads)
    rng = np.random.default_rng(seed)
    users = zipf_users(rng, total)
    candidate_sets = rng.integers(0, N_SERVICES, size=(total, BATCH_SIZE))
    interval = 1.0 / offered_qps

    latencies = [np.empty(0)] * threads
    errors = [0] * threads
    barrier = threading.Barrier(threads + 1)

    def worker(worker_id: int) -> None:
        channel = issuer.make_channel()
        mine = range(worker_id, total, threads)
        stamps = np.empty(len(mine))
        failed = 0
        barrier.wait()
        t0 = time.perf_counter()
        for slot, k in enumerate(mine):
            scheduled = t0 + k * interval
            delay = scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                issuer.issue(channel, int(users[k]), candidate_sets[k].tolist())
            except Exception:  # noqa: BLE001 — overload shows up as errors
                failed += 1
                stamps[slot] = np.nan
                continue
            stamps[slot] = time.perf_counter() - scheduled
        latencies[worker_id] = stamps
        errors[worker_id] = failed
        channel.close()

    pool = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(threads)
    ]
    for thread in pool:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - started

    all_latencies = np.concatenate(latencies)
    ok = all_latencies[np.isfinite(all_latencies)]
    failed = int(sum(errors))
    achieved = len(ok) / elapsed if elapsed > 0 else 0.0
    return {
        "offered_qps": round(offered_qps, 1),
        "achieved_qps": round(achieved, 1),
        "requests": int(total),
        "errors": failed,
        "p50_ms": round(float(np.percentile(ok, 50)) * 1e3, 3) if len(ok) else None,
        "p99_ms": round(float(np.percentile(ok, 99)) * 1e3, 3) if len(ok) else None,
    }


def sweep(
    issuer: _Issuer, rates: list[float], duration: float, threads: int, seed: int
) -> dict:
    results = []
    sustained = 0.0
    for rate in rates:
        outcome = run_round(issuer, rate, duration, threads, seed)
        results.append(outcome)
        if outcome["errors"] == 0 and outcome["achieved_qps"] >= 0.9 * rate:
            sustained = max(sustained, outcome["achieved_qps"])
        print(
            f"  {issuer.transport:>6} @ {rate:>7,.0f} offered: "
            f"{outcome['achieved_qps']:>8,.1f} achieved, "
            f"p50 {outcome['p50_ms']} ms, p99 {outcome['p99_ms']} ms, "
            f"{outcome['errors']} errors"
        )
    return {"results": results, "sustained_qps": round(sustained, 1)}


def validate_record(record: dict) -> list[str]:
    """Schema check for one BENCH_serving.json record; returns problems."""
    problems = []

    def require(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    require(isinstance(record.get("timestamp"), str), "missing timestamp")
    require(isinstance(record.get("revision"), str), "missing revision")
    config = record.get("config")
    require(isinstance(config, dict), "missing config")
    if isinstance(config, dict):
        for key in (
            "n_users",
            "n_services",
            "batch_size",
            "zipf_s",
            "duration_seconds",
            "threads",
            "rates",
        ):
            require(key in config, f"config.{key} missing")
    transports = record.get("transports")
    require(isinstance(transports, dict), "missing transports")
    if isinstance(transports, dict):
        for name in ("json", "binary"):
            block = transports.get(name)
            require(isinstance(block, dict), f"transports.{name} missing")
            if not isinstance(block, dict):
                continue
            require(
                isinstance(block.get("sustained_qps"), (int, float)),
                f"transports.{name}.sustained_qps missing",
            )
            rounds = block.get("results")
            require(
                isinstance(rounds, list) and rounds,
                f"transports.{name}.results empty",
            )
            for k, outcome in enumerate(rounds or []):
                for key in (
                    "offered_qps",
                    "achieved_qps",
                    "requests",
                    "errors",
                    "p50_ms",
                    "p99_ms",
                ):
                    require(
                        key in (outcome or {}),
                        f"transports.{name}.results[{k}].{key} missing",
                    )
    return problems


def validate_file(path: Path) -> None:
    if not path.exists():
        raise SystemExit(f"{path} does not exist")
    history = json.loads(path.read_text())
    if not isinstance(history, list) or not history:
        raise SystemExit(f"{path} must hold a non-empty JSON array")
    failures = 0
    for index, record in enumerate(history):
        for problem in validate_record(record):
            print(f"record[{index}]: {problem}")
            failures += 1
    if failures:
        raise SystemExit(f"{path}: {failures} schema problem(s)")
    print(f"{path}: {len(history)} record(s) OK")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rates",
        default="100,250,500,1000,2000",
        help="comma-separated offered QPS ladder",
    )
    parser.add_argument(
        "--duration", type=float, default=3.0, help="seconds per rate round"
    )
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--warm", type=int, default=1000, help="warmup observations")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--note", default="")
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sweep; schema-check the record instead of appending it",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="schema-check an existing results file and exit",
    )
    args = parser.parse_args()

    if args.validate:
        validate_file(args.output or RESULTS_PATH)
        return

    if args.smoke:
        args.rates = "50"
        args.duration = 1.0
        args.threads = 2
        args.warm = 200

    rates = [float(r) for r in args.rates.split(",") if r.strip()]
    with PredictionServer(rng=args.seed, background_replay=False) as server:
        warm_server(server, args.warm, args.seed)
        transports = {}
        for transport in ("json", "binary"):
            print(f"{transport} transport:")
            transports[transport] = sweep(
                _Issuer(transport, server),
                rates,
                args.duration,
                args.threads,
                args.seed,
            )
        cache_stats = server._predict_cache.stats()

    json_p50 = transports["json"]["results"][0]["p50_ms"]
    binary_p50 = transports["binary"]["results"][0]["p50_ms"]
    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "revision": git_revision(),
        "config": {
            "n_users": N_USERS,
            "n_services": N_SERVICES,
            "batch_size": BATCH_SIZE,
            "zipf_s": ZIPF_S,
            "duration_seconds": args.duration,
            "threads": args.threads,
            "warm_observations": args.warm,
            "rates": rates,
            "seed": args.seed,
        },
        "transports": transports,
        "binary_p50_speedup": (
            round(json_p50 / binary_p50, 2) if json_p50 and binary_p50 else None
        ),
        "predict_cache": cache_stats,
        "note": args.note,
    }

    problems = validate_record(record)
    if problems:
        raise SystemExit("record failed its own schema: " + "; ".join(problems))

    speedup = record["binary_p50_speedup"]
    print(
        f"binary p50 speedup over JSON at {rates[0]:,.0f} QPS: "
        f"{speedup}x" if speedup else "speedup unmeasurable"
    )
    if args.smoke and args.output is None:
        if not (speedup and speedup > 1.0):
            raise SystemExit(
                f"smoke: binary transport not faster than JSON (p50 speedup "
                f"{speedup})"
            )
        print("smoke OK (record validated, not appended)")
        return

    output = args.output or RESULTS_PATH
    history = json.loads(output.read_text()) if output.exists() else []
    if not isinstance(history, list):
        raise SystemExit(f"{output} does not hold a JSON array")
    history.append(record)
    output.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended to {output}")


if __name__ == "__main__":
    main()
