#!/usr/bin/env python
"""Chaos smoke check: hostile stream + kill-and-restart must not diverge.

Drives the fault-injection harness end to end: generate a synthetic QoS
stream, mangle it (drops, duplicates, reordering, corruption), feed it to a
durable :class:`~repro.server.app.PredictionServer` over HTTP, kill the
server mid-stream with no final checkpoint, recover it from checkpoint +
WAL tail, finish the stream, and compare the recovered model
sample-for-sample against an uninterrupted baseline.  The recovered
server's ``/metrics`` endpoint is also scraped mid-drill: the exposition
must parse as valid Prometheus text and contain every core metric family
(``repro.simulation.CORE_METRIC_FAMILIES``).  Exits nonzero on any model
divergence *or* malformed/incomplete metrics, so CI (and operators) can
use it as a one-command recovery drill::

    PYTHONPATH=src python scripts/chaos_check.py
    PYTHONPATH=src python scripts/chaos_check.py --records 500 --seed 7 --clean
    PYTHONPATH=src python scripts/chaos_check.py --poison-flood

``--clean`` runs a pristine stream (pure crash/recovery check).
``--poison-flood`` runs the combined robustness drill instead: a gated,
admission-controlled server is warmed over a poisoned stream (NaN/±inf/
negative wire payloads must all bounce with 400), then flooded from
multiple threads (the server must shed with 429/503 + ``Retry-After``
while in-flight predictions keep serving), and its prediction accuracy
after the flood must match the accuracy before it.
``--failover`` runs the high-availability drill instead: a primary and a
WAL-shipping standby behind a lossy, partitionable replication link; the
primary is killed mid-stream, the standby must auto-promote via the
fencing epoch CAS, the client must fail over, a revived old primary must
refuse writes with 409 ``stale_epoch``, and the promoted standby must be
bit-identical (checkpoint digest, dedup ledger, windowed MAE) to a server
that never failed.  ``--bench-out`` appends the measured time-to-promote
and replication-lag figures to a JSON history file
(``BENCH_robustness.json`` by convention).
``--memory-pressure`` runs the bounded-memory lifecycle drill instead: a
hot/cold-tiered server is squeezed under a fault-injected allocation
ceiling; its watchdog must tighten the hot-tier caps, shed cold-entity
revive reads with 429 + ``Retry-After`` while hot-entity predictions keep
answering, and a ``kill -9`` restart must reproduce the squeezed state
(tier assignment, caps, factors) bit-exactly from checkpoint + WAL.
``--shard-kill`` runs the sharded-fleet drill instead: N durable shards
behind the cluster router; one shard is killed mid-stream and the blast
radius must stay bounded — surviving shards keep serving with their
per-sample error streams (windowed MAE) untouched, victim-owned traffic
fails with a structured 503 ``shard_unavailable``, and the restarted
shard must recover bit-exact from its own WAL (checkpoint digest equality
against a never-faulted baseline).
``--migration-kill`` runs the live-migration crash drill instead: a
2-shard fleet drains one shard through a live entity migration while the
source shard, destination shard, and router are each SIGKILLed at the
source-export, in-flight-transfer, and pre-commit phases (one kill per
run, every target x phase combination).  Each resumed migration must
converge with zero lost and zero duplicated entities, every re-homed
entity's factor row / samples / gate state byte-equal to an unkilled
baseline migration, and checkpoint digests equal on both shards.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.datasets.schema import QoSRecord
from repro.simulation import FaultConfig, run_crash_recovery

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_stream(n: int, seed: int, n_users: int = 20, n_services: int = 40):
    rng = np.random.default_rng(seed)
    return [
        QoSRecord(
            timestamp=float(k),
            user_id=int(rng.integers(n_users)),
            service_id=int(rng.integers(n_services)),
            value=float(rng.uniform(0.05, 5.0)),
        )
        for k in range(n)
    ]


def run_poison_flood(seed: int, records: int) -> int:
    """The combined poison + flood drill.  Returns a process exit code."""
    from repro.metrics.errors import mae
    from repro.robustness import AdmissionConfig
    from repro.server.app import PredictionServer
    from repro.server.client import PredictionClient
    from repro.simulation import FaultInjector, check_metrics_exposition, drive_client
    from repro.simulation.faults import run_flood

    rng = np.random.default_rng(seed)
    n_users, n_services = 12, 16
    # Structured ground truth (rank-1 + noise) so "accuracy" is measurable:
    # the model should learn M, and a flood must not unlearn it.
    user_profile = rng.uniform(0.5, 2.0, size=n_users)
    service_profile = rng.uniform(0.4, 2.5, size=n_services)
    truth = np.outer(user_profile, service_profile)

    def sample(k: int) -> QoSRecord:
        u = int(rng.integers(n_users))
        s = int(rng.integers(n_services))
        noisy = float(truth[u, s] * (1.0 + rng.normal(0.0, 0.03)))
        return QoSRecord(timestamp=float(k), user_id=u, service_id=s,
                         value=max(noisy, 1e-3))

    warm = [sample(k) for k in range(records)]
    flood_records = [sample(records + k) for k in range(records * 4)]
    probe_pairs = [(u, s) for u in range(n_users) for s in range(n_services)]

    failures: list[str] = []
    server = PredictionServer(
        rng=seed,
        background_replay=False,
        gate=True,
        admission=AdmissionConfig(rate=400.0, burst=60.0, max_pending=16,
                                  deadline=1.0),
    )
    server.start()
    try:
        # Warm-up through a poisoned pipe.  The keyed client retries shed
        # requests honoring Retry-After, so every valid sample lands even
        # against the rate limiter; every poisoned payload must bounce.
        client = PredictionClient(server.address, retries=4, backoff=0.05)
        injector = FaultInjector(warm, FaultConfig(poison_rate=0.08), rng=seed)
        outcome = drive_client(client, injector, idempotency_prefix="warmup")
        print(f"warm-up: {outcome}")
        if outcome["poison_accepted"]:
            failures.append(
                f"{outcome['poison_accepted']} poisoned payloads were accepted"
            )
        if outcome["poisoned"] == 0:
            failures.append("drill bug: no poison events were injected")
        if outcome["rejected"]:
            failures.append(
                f"{outcome['rejected']} valid keyed warm-up samples were "
                "lost despite retries"
            )

        def probe_mae() -> float:
            predicted = [client.predict(u, s) for u, s in probe_pairs]
            actual = [float(truth[u, s]) for u, s in probe_pairs]
            return mae(predicted, actual)

        pre_mae = probe_mae()
        flood = run_flood(server.address, flood_records, threads=4,
                          predict_pairs=probe_pairs)
        print(f"flood: {flood}")
        post_mae = probe_mae()
        print(f"accuracy: pre-flood MAE {pre_mae:.4f}, post-flood MAE {post_mae:.4f}")

        if flood["shed"] == 0:
            failures.append("flood was never shed (admission control inert)")
        if flood["retry_after_hints"] < flood["shed"]:
            failures.append(
                f"only {flood['retry_after_hints']}/{flood['shed']} shed "
                "responses carried a Retry-After hint"
            )
        if flood["errors"]:
            failures.append(f"{flood['errors']} transport errors during flood")
        if flood["predictions_ok"] == 0:
            failures.append("no predictions served during the flood")
        if flood["predictions_failed"]:
            failures.append(
                f"{flood['predictions_failed']} predictions failed during the flood"
            )
        # The flood feeds in-distribution samples, so accepted ones can only
        # refine the model; accuracy must not degrade materially.
        if post_mae > pre_mae * 1.25 + 0.05:
            failures.append(
                f"post-flood MAE {post_mae:.4f} degraded from {pre_mae:.4f}"
            )
        metrics_ok, metrics_detail = check_metrics_exposition(client.metrics())
        print(f"metrics exposition {'OK' if metrics_ok else 'INVALID'}: "
              f"{metrics_detail}")
        if not metrics_ok:
            failures.append(f"metrics exposition invalid: {metrics_detail}")
    finally:
        server.stop()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("poison+flood drill PASSED")
    return 0


def _git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:  # noqa: BLE001 — the drill must run outside git too
        return "unknown"


def run_failover_drill(
    seed: int,
    records: int,
    crash_after: "int | None",
    checkpoint_interval: int,
    bench_out: "str | None",
) -> int:
    """The high-availability drill.  Returns a process exit code."""
    import os

    from repro.simulation.faults import LinkFaultConfig, run_failover

    stream = make_stream(records, seed)
    kill_after = crash_after if crash_after is not None else int(records * 0.6)
    with tempfile.TemporaryDirectory(prefix="qos-failover-") as root:
        report = run_failover(
            stream,
            kill_after=kill_after,
            primary_dir=os.path.join(root, "primary"),
            standby_dir=os.path.join(root, "standby"),
            baseline_dir=os.path.join(root, "baseline"),
            epoch_store=os.path.join(root, "epoch.json"),
            rng=seed,
            checkpoint_interval=checkpoint_interval,
            server_kwargs={"gate": True},
            link_faults=LinkFaultConfig(loss_rate=0.1),
        )
    print(report.summary())
    passed = report.matches and report.metrics_ok
    if bench_out is not None:
        path = Path(bench_out)
        entry = {
            "timestamp": datetime.now(timezone.utc).isoformat(),
            "revision": _git_revision(),
            "drill": "failover",
            "records": records,
            "kill_after": kill_after,
            "seed": seed,
            "time_to_promote_s": round(report.time_to_promote, 4),
            "lag_during_partition": report.detail.get("lag_during_partition"),
            "catchup_seconds_after_heal": report.detail.get(
                "catchup_seconds_after_heal"
            ),
            "promoted_epoch": report.detail.get("promoted_epoch"),
            "pass": passed,
        }
        history = json.loads(path.read_text()) if path.exists() else []
        history.append(entry)
        path.write_text(json.dumps(history, indent=2) + "\n")
        print(f"recorded to {path}")
    return 0 if passed else 1


def run_memory_pressure_drill(
    seed: int, records: int, checkpoint_interval: int
) -> int:
    """The bounded-memory lifecycle drill.  Returns a process exit code."""
    from repro.simulation.faults import run_memory_pressure

    # Many more entities than the hot caps, so the stream itself churns
    # the tiers before the watchdog ever tightens them.
    stream = make_stream(records, seed, n_users=120, n_services=60)
    with tempfile.TemporaryDirectory(prefix="qos-memory-") as data_dir:
        report = run_memory_pressure(
            stream,
            data_dir=data_dir,
            rng=seed,
            checkpoint_interval=checkpoint_interval,
            hot_users=32,
            hot_services=32,
        )
    print(report.summary())
    return 0 if (report.matches and report.metrics_ok) else 1


def run_shard_kill_drill(
    seed: int, records: int, n_shards: int, checkpoint_interval: int
) -> int:
    """The sharded-fleet blast-radius drill.  Returns a process exit code."""
    from repro.simulation.faults import run_shard_kill

    # Enough distinct users that every shard owns a live substream.
    stream = make_stream(records, seed, n_users=60, n_services=24)
    with tempfile.TemporaryDirectory(prefix="qos-shard-kill-") as root:
        report = run_shard_kill(
            stream,
            data_root=root,
            n_shards=n_shards,
            rng=seed,
            checkpoint_interval=checkpoint_interval,
        )
    print(report.summary())
    return 0 if (report.matches and report.metrics_ok) else 1


def make_migration_stream(
    seed: int, n_users: int = 16, per_user: int = 3, rounds: int = 2
) -> "list[QoSRecord]":
    """A stream with per-user *disjoint* service sets, so every sample
    edge stays inside one migration unit — the setup under which live
    migration is provably bit-exact (shared services collapse two
    per-shard views into one, which is convergent but not byte-equal)."""
    rng = np.random.default_rng(seed)
    records = []
    tick = 0.0
    for _ in range(rounds):
        for user_id in range(n_users):
            for service_id in range(
                user_id * per_user, (user_id + 1) * per_user
            ):
                tick += 1.0
                records.append(
                    QoSRecord(
                        timestamp=tick,
                        user_id=user_id,
                        service_id=service_id,
                        value=float(rng.uniform(0.05, 5.0)),
                    )
                )
    return records


def run_migration_kill_drill(seed: int, checkpoint_interval: int) -> int:
    """The kill-anything migration drill.  Returns a process exit code."""
    from repro.simulation.faults import run_migration_kill

    stream = make_migration_stream(seed)
    failed = 0
    for kill_target in ("source", "dest", "router"):
        for kill_phase in ("export", "transfer", "pre-commit"):
            with tempfile.TemporaryDirectory(prefix="qos-migration-") as root:
                report = run_migration_kill(
                    stream,
                    data_root=root,
                    kill_target=kill_target,
                    kill_phase=kill_phase,
                    rng=seed,
                    checkpoint_interval=checkpoint_interval,
                )
            print(f"--- kill {kill_target} at {kill_phase} ---")
            print(report.summary())
            if not (report.matches and report.metrics_ok):
                failed += 1
    if failed:
        print(f"migration kill drill FAILED ({failed} combinations diverged)")
        return 1
    print("migration kill drill PASSED (9/9 kill combinations converged)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=300,
                        help="stream length (default 300)")
    parser.add_argument("--crash-after", type=int, default=None,
                        help="records before the kill (default: 60%% of stream)")
    parser.add_argument("--checkpoint-interval", type=int, default=50,
                        help="observations per checkpoint (default 50)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--clean", action="store_true",
                        help="disable stream faults (pure crash/recovery)")
    parser.add_argument("--poison-flood", action="store_true",
                        help="run the combined poison + flood robustness "
                             "drill instead of the crash/recovery drill")
    parser.add_argument("--failover", action="store_true",
                        help="run the primary/standby failover drill "
                             "instead of the crash/recovery drill")
    parser.add_argument("--memory-pressure", action="store_true",
                        help="run the bounded-memory lifecycle drill "
                             "(allocation ceiling -> degrade, never die) "
                             "instead of the crash/recovery drill")
    parser.add_argument("--shard-kill", action="store_true",
                        help="run the sharded-fleet blast-radius drill "
                             "(kill one shard behind the router) instead "
                             "of the crash/recovery drill")
    parser.add_argument("--shards", type=int, default=3,
                        help="fleet size for --shard-kill (default 3)")
    parser.add_argument("--migration-kill", action="store_true",
                        help="run the live-migration crash drill (kill "
                             "source/dest/router at every migration phase; "
                             "each resumed migration must converge bit-exact "
                             "against an unkilled baseline) instead of the "
                             "crash/recovery drill")
    parser.add_argument("--bench-out", default=None,
                        help="JSON history file to append failover timing "
                             "figures to (e.g. BENCH_robustness.json)")
    args = parser.parse_args()

    if args.poison_flood:
        return run_poison_flood(args.seed, args.records)
    if args.migration_kill:
        return run_migration_kill_drill(args.seed, args.checkpoint_interval)
    if args.shard_kill:
        return run_shard_kill_drill(
            args.seed, args.records, args.shards, args.checkpoint_interval
        )
    if args.memory_pressure:
        return run_memory_pressure_drill(
            args.seed, args.records, args.checkpoint_interval
        )
    if args.failover:
        return run_failover_drill(
            args.seed,
            args.records,
            args.crash_after,
            args.checkpoint_interval,
            args.bench_out,
        )

    records = make_stream(args.records, args.seed)
    crash_after = (
        args.crash_after if args.crash_after is not None
        else int(args.records * 0.6)
    )
    faults = None if args.clean else FaultConfig(
        drop_rate=0.08,
        duplicate_rate=0.05,
        reorder_rate=0.05,
        corrupt_rate=0.03,
        corrupt_factor=1e4,
    )

    with tempfile.TemporaryDirectory(prefix="qos-chaos-") as data_dir:
        report = run_crash_recovery(
            records,
            crash_after=crash_after,
            data_dir=data_dir,
            rng=args.seed,
            checkpoint_interval=args.checkpoint_interval,
            faults=faults,
        )
    print(report.summary())
    return 0 if (report.matches and report.metrics_ok) else 1


if __name__ == "__main__":
    sys.exit(main())
