#!/usr/bin/env python
"""Chaos smoke check: hostile stream + kill-and-restart must not diverge.

Drives the fault-injection harness end to end: generate a synthetic QoS
stream, mangle it (drops, duplicates, reordering, corruption), feed it to a
durable :class:`~repro.server.app.PredictionServer` over HTTP, kill the
server mid-stream with no final checkpoint, recover it from checkpoint +
WAL tail, finish the stream, and compare the recovered model
sample-for-sample against an uninterrupted baseline.  The recovered
server's ``/metrics`` endpoint is also scraped mid-drill: the exposition
must parse as valid Prometheus text and contain every core metric family
(``repro.simulation.CORE_METRIC_FAMILIES``).  Exits nonzero on any model
divergence *or* malformed/incomplete metrics, so CI (and operators) can
use it as a one-command recovery drill::

    PYTHONPATH=src python scripts/chaos_check.py
    PYTHONPATH=src python scripts/chaos_check.py --records 500 --seed 7 --clean

Run with ``--clean`` for a pristine stream (pure crash/recovery check).
"""

from __future__ import annotations

import argparse
import sys
import tempfile

import numpy as np

from repro.datasets.schema import QoSRecord
from repro.simulation import FaultConfig, run_crash_recovery


def make_stream(n: int, seed: int, n_users: int = 20, n_services: int = 40):
    rng = np.random.default_rng(seed)
    return [
        QoSRecord(
            timestamp=float(k),
            user_id=int(rng.integers(n_users)),
            service_id=int(rng.integers(n_services)),
            value=float(rng.uniform(0.05, 5.0)),
        )
        for k in range(n)
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=300,
                        help="stream length (default 300)")
    parser.add_argument("--crash-after", type=int, default=None,
                        help="records before the kill (default: 60%% of stream)")
    parser.add_argument("--checkpoint-interval", type=int, default=50,
                        help="observations per checkpoint (default 50)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--clean", action="store_true",
                        help="disable stream faults (pure crash/recovery)")
    args = parser.parse_args()

    records = make_stream(args.records, args.seed)
    crash_after = (
        args.crash_after if args.crash_after is not None
        else int(args.records * 0.6)
    )
    faults = None if args.clean else FaultConfig(
        drop_rate=0.08,
        duplicate_rate=0.05,
        reorder_rate=0.05,
        corrupt_rate=0.03,
        corrupt_factor=1e4,
    )

    with tempfile.TemporaryDirectory(prefix="qos-chaos-") as data_dir:
        report = run_crash_recovery(
            records,
            crash_after=crash_after,
            data_dir=data_dir,
            rng=args.seed,
            checkpoint_interval=args.checkpoint_interval,
            faults=faults,
        )
    print(report.summary())
    return 0 if (report.matches and report.metrics_ok) else 1


if __name__ == "__main__":
    sys.exit(main())
