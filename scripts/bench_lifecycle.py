#!/usr/bin/env python
"""Bounded-memory lifecycle benchmark: million-entity churn under an RSS cap.

Streams a high-churn workload (most observations introduce a brand-new
user, the rest revisit a Zipf-weighted recent tail) through two models:

* **bounded**   — :class:`TieredAMF` with small hot-tier caps and an
  on-disk :class:`SpillStore`; cold entities are demoted to sqlite and
  revived on re-touch.
* **unbounded** — the *same* ``TieredAMF`` code path with caps larger
  than the entity population (nothing ever demotes).  Using the tiered
  model for the baseline keeps the factor-init RNG draws aligned 1:1
  with entity first-touches, so the two runs produce **bit-identical**
  per-sample error streams — MAE parity is an equality check, not a
  tolerance dance.

Each phase runs in a subprocess so its peak memory (``VmPeak`` /
``ru_maxrss``) is its own, and so an address-space cap
(``RLIMIT_AS``) can kill the unbounded model without taking the
orchestrator down.  The headline claims, in run order:

1. the bounded model completes the full stream under a cap derived from
   its own uncapped peak;
2. the unbounded model **dies** under that same cap (and its uncapped
   peak exceeds the cap);
3. windowed mean relative error of the bounded run is within 2% of the
   unbounded baseline;
4. a kill-and-restart drill (:func:`run_crash_recovery` with tiering
   enabled) reproduces the uninterrupted run's checkpoint
   ``archive_digest`` byte-for-byte while entities sit spilled.

One record per run is appended to ``BENCH_lifecycle.json``::

    PYTHONPATH=src python scripts/bench_lifecycle.py
    PYTHONPATH=src python scripts/bench_lifecycle.py --observations 200000

Modes for CI:

* ``--smoke``    — tiny stream, the RLIMIT death phase is skipped (CI
  address-space headroom is unpredictable); the record is schema-checked
  but **not** appended; fails unless MAE parity and the digest check hold.
* ``--validate`` — schema-check an existing results file and exit.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_lifecycle.json"

OBSERVATIONS = 1_300_000
N_SERVICES = 60_000
CHURN_PROB = 0.8  # P(observation introduces a never-seen user)
ZIPF_A = 1.3  # revisit-distance tail exponent
WINDOW = 50_000
HOT_USERS = 20_000
HOT_SERVICES = 8_000
CAP_HEADROOM = 1.25  # cap = bounded uncapped VmPeak * this


def git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def vm_peak_bytes() -> "int | None":
    """Peak virtual size of this process (Linux; None elsewhere)."""
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmPeak:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return None


def make_stream_arrays(n: int, seed: int, n_services: int, churn_prob: float):
    """Vectorized churn stream: (users, services, values) arrays.

    With probability ``churn_prob`` an observation introduces the next
    never-seen sequential user id; otherwise it revisits a user a
    Zipf-distributed distance back in introduction order — recently
    introduced users are revisited while hot, older ones only after
    they have been demoted, which is exactly the revive traffic the
    bench wants to exercise.  Services are Zipf-weighted over a fixed
    catalogue.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    fresh = rng.random(n) < churn_prob
    fresh[0] = True
    introduced = np.cumsum(fresh)  # users introduced after sample k (>= 1)
    back = rng.zipf(ZIPF_A, size=n)  # 1, 2, 3, ... heavy-tailed
    users = np.where(fresh, introduced - 1, np.maximum(introduced - back, 0))
    weights = 1.0 / np.arange(1, n_services + 1) ** 1.1
    services = rng.choice(n_services, size=n, p=weights / weights.sum())
    values = rng.uniform(0.05, 5.0, size=n)
    return users.astype(np.int64), services, values


def run_phase(params: dict) -> dict:
    """One churn phase, executed inside a subprocess (see ``--phase``)."""
    import resource

    cap = params["cap_bytes"]
    if cap:
        resource.setrlimit(resource.RLIMIT_AS, (cap, cap))

    import numpy as np  # noqa: F401 — imported before the stream, after rlimit

    from repro.datasets.schema import QoSRecord
    from repro.lifecycle import LifecycleConfig, SpillStore
    from repro.lifecycle.tiered import TieredAMF

    n = params["observations"]
    users, services, values = make_stream_arrays(
        n, params["seed"], params["n_services"], params["churn_prob"]
    )
    if params["bounded"]:
        lifecycle = LifecycleConfig(
            hot_users=params["hot_users"], hot_services=params["hot_services"]
        )
        spill = SpillStore(params["spill_path"])
    else:
        # Caps above the population: the tiered code path, zero demotions.
        lifecycle = LifecycleConfig(hot_users=n + 1, hot_services=n + 1)
        spill = SpillStore(":memory:")
    model = TieredAMF(rng=params["seed"], lifecycle=lifecycle, spill=spill)

    window = params["window"]
    window_maes: list[float] = []
    acc = 0.0
    count = 0
    start = time.perf_counter()
    for k in range(n):
        record = QoSRecord(
            timestamp=float(k),
            user_id=int(users[k]),
            service_id=int(services[k]),
            value=float(values[k]),
        )
        __, error = model.observe_reviving(record)
        acc += error
        count += 1
        if count == window:
            window_maes.append(acc / count)
            acc = 0.0
            count = 0
    wall = time.perf_counter() - start
    if count:
        window_maes.append(acc / count)

    status = model.lifecycle_status()
    result = {
        "completed": True,
        "observations": n,
        "distinct_users": len(model._u_slot_of) + len(model._spilled_users),
        "distinct_services": (
            len(model._s_slot_of) + len(model._spilled_services)
        ),
        "hot_users": len(model._u_slot_of),
        "spilled_users": len(model._spilled_users),
        "demotions": status["demoted_users"] + status["demoted_services"],
        "revivals": status["revived_users"] + status["revived_services"],
        "resident_bytes": model.resident_bytes(),
        "wall_seconds": round(wall, 3),
        "obs_per_sec": round(n / wall, 1) if wall > 0 else None,
        "window_maes": [round(m, 8) for m in window_maes],
        "mean_windowed_mae": round(sum(window_maes) / len(window_maes), 8),
        "vm_peak_bytes": vm_peak_bytes(),
        "ru_maxrss_bytes": (
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
        ),
    }
    spill.close()
    Path(params["out_path"]).write_text(json.dumps(result))
    return result


def spawn_phase(params: dict, expect_death: bool = False) -> dict:
    """Run one phase in a child interpreter; parse its JSON result file.

    ``expect_death`` inverts success: the child must exit nonzero (the
    RLIMIT_AS cap killed it) without having written a completed result.
    """
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".json", delete=False
    ) as handle:
        out_path = handle.name
    child_params = dict(params, out_path=out_path)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, __file__, "--phase", json.dumps(child_params)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    completed = None
    try:
        raw = Path(out_path).read_text()
        completed = json.loads(raw) if raw.strip() else None
    except (OSError, json.JSONDecodeError):
        completed = None
    finally:
        try:
            os.unlink(out_path)
        except OSError:
            pass

    if expect_death:
        died = proc.returncode != 0 and completed is None
        tail = (proc.stderr or "").strip().splitlines()[-3:]
        return {
            "died": died,
            "returncode": proc.returncode,
            "stderr_tail": tail,
            "memory_error": "MemoryError" in (proc.stderr or ""),
        }
    if proc.returncode != 0 or completed is None:
        raise SystemExit(
            f"phase {params.get('label', '?')} failed "
            f"(rc={proc.returncode}):\n{proc.stderr}"
        )
    return completed


def run_digest_check(seed: int) -> dict:
    """Crash-recovery digest equality with entities spilled at crash time.

    Small scale on purpose: the property being pinned is byte-equality of
    the persisted archive across kill-and-restart *while the spill store
    holds demoted entities*, which a few hundred observations over caps
    of 24 already forces.
    """
    from repro.lifecycle import LifecycleConfig, SpillStore
    from repro.simulation.faults import run_crash_recovery

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from chaos_check import make_stream

    records = make_stream(400, seed, n_users=80, n_services=40)
    server_kwargs = {"lifecycle": LifecycleConfig(hot_users=24, hot_services=24)}
    with tempfile.TemporaryDirectory(prefix="qos-lifecycle-digest-") as root:
        data_dir = os.path.join(root, "crash")
        baseline_dir = os.path.join(root, "baseline")
        report = run_crash_recovery(
            records,
            crash_after=260,
            data_dir=data_dir,
            rng=seed,
            checkpoint_interval=100,
            server_kwargs=server_kwargs,
            baseline_data_dir=baseline_dir,
        )
        spill = SpillStore(os.path.join(data_dir, "spill.sqlite"))
        spilled_users = spill.count("user")
        spilled_services = spill.count("service")
        spill.close()
    digests = report.detail.get("checkpoint_digests") or {}
    return {
        "matches": bool(report.matches),
        "digests_equal": bool(digests)
        and digests.get("recovered") == digests.get("baseline"),
        "digests": digests,
        "spilled_users": spilled_users,
        "spilled_services": spilled_services,
    }


def validate_record(record: dict) -> list[str]:
    """Schema check for one BENCH_lifecycle.json record; returns problems."""
    problems = []

    def require(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    require(isinstance(record.get("timestamp"), str), "missing timestamp")
    require(isinstance(record.get("revision"), str), "missing revision")
    config = record.get("config")
    require(isinstance(config, dict), "missing config")
    if isinstance(config, dict):
        for key in (
            "observations",
            "n_services",
            "churn_prob",
            "hot_users",
            "hot_services",
            "window",
            "seed",
        ):
            require(key in config, f"config.{key} missing")
    for name in ("bounded", "unbounded"):
        phase = record.get(name)
        require(isinstance(phase, dict), f"missing {name} phase")
        if not isinstance(phase, dict):
            continue
        require(phase.get("completed") is True, f"{name}.completed is not true")
        for key in (
            "observations",
            "distinct_users",
            "wall_seconds",
            "window_maes",
            "mean_windowed_mae",
            "vm_peak_bytes",
            "ru_maxrss_bytes",
        ):
            require(key in phase, f"{name}.{key} missing")
    capped = record.get("capped_unbounded")
    require(isinstance(capped, dict), "missing capped_unbounded")
    if isinstance(capped, dict) and not capped.get("skipped"):
        require("died" in capped, "capped_unbounded.died missing")
    require(
        isinstance(record.get("cap_bytes"), int), "cap_bytes missing or not int"
    )
    parity = record.get("mae_parity")
    require(isinstance(parity, dict), "missing mae_parity")
    if isinstance(parity, dict):
        for key in ("bounded_mean", "unbounded_mean", "rel_diff"):
            require(
                isinstance(parity.get(key), (int, float)),
                f"mae_parity.{key} missing",
            )
    digest = record.get("digest_check")
    require(isinstance(digest, dict), "missing digest_check")
    if isinstance(digest, dict):
        require("matches" in digest, "digest_check.matches missing")
        require(
            isinstance(digest.get("spilled_users"), int),
            "digest_check.spilled_users missing",
        )
    require(isinstance(record.get("pass"), bool), "missing pass")
    return problems


def validate_file(path: Path) -> None:
    if not path.exists():
        raise SystemExit(f"{path} does not exist")
    history = json.loads(path.read_text())
    if not isinstance(history, list) or not history:
        raise SystemExit(f"{path} must hold a non-empty JSON array")
    failures = 0
    for index, record in enumerate(history):
        for problem in validate_record(record):
            print(f"record[{index}]: {problem}")
            failures += 1
    if failures:
        raise SystemExit(f"{path}: {failures} schema problem(s)")
    print(f"{path}: {len(history)} record(s) OK")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--observations", type=int, default=OBSERVATIONS)
    parser.add_argument("--services", type=int, default=N_SERVICES)
    parser.add_argument("--churn", type=float, default=CHURN_PROB)
    parser.add_argument("--hot-users", type=int, default=HOT_USERS)
    parser.add_argument("--hot-services", type=int, default=HOT_SERVICES)
    parser.add_argument("--window", type=int, default=WINDOW)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--note", default="")
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny stream, skip the RLIMIT death phase, validate-not-append",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="schema-check an existing results file and exit",
    )
    parser.add_argument(
        "--phase", default=None, help=argparse.SUPPRESS
    )  # internal: JSON params for one subprocess phase
    args = parser.parse_args()

    if args.phase is not None:
        run_phase(json.loads(args.phase))
        return
    if args.validate:
        validate_file(args.output or RESULTS_PATH)
        return
    if args.smoke:
        args.observations = 6_000
        args.services = 400
        args.hot_users = 512
        args.hot_services = 256
        args.window = 1_500

    base = {
        "observations": args.observations,
        "n_services": args.services,
        "churn_prob": args.churn,
        "hot_users": args.hot_users,
        "hot_services": args.hot_services,
        "window": args.window,
        "seed": args.seed,
        "cap_bytes": None,
    }
    with tempfile.TemporaryDirectory(prefix="qos-lifecycle-bench-") as root:
        spill_path = os.path.join(root, "spill.sqlite")
        print("phase 1/3: bounded (tiered, uncapped — derives the cap) ...")
        bounded = spawn_phase(
            dict(base, bounded=True, spill_path=spill_path, label="bounded")
        )
        cap_bytes = int(bounded["vm_peak_bytes"] * CAP_HEADROOM)
        print(
            f"  {bounded['obs_per_sec']:,.0f} obs/s, "
            f"{bounded['distinct_users']:,} users "
            f"({bounded['spilled_users']:,} spilled), "
            f"VmPeak {bounded['vm_peak_bytes'] / 1e6:,.0f} MB "
            f"-> cap {cap_bytes / 1e6:,.0f} MB"
        )

        if args.smoke:
            # RLIMIT_AS death is a property of absolute scale; at smoke
            # scale the interpreter baseline dominates, so the phase is
            # skipped rather than made meaningless.
            capped_unbounded = {"skipped": True}
            print("phase 2/3: capped unbounded — skipped (--smoke)")
        else:
            print("phase 2/3: unbounded under the cap (must die) ...")
            capped_unbounded = spawn_phase(
                dict(
                    base,
                    bounded=False,
                    spill_path=":memory:",
                    cap_bytes=cap_bytes,
                    label="capped-unbounded",
                ),
                expect_death=True,
            )
            print(
                f"  died={capped_unbounded['died']} "
                f"(rc={capped_unbounded['returncode']}, "
                f"MemoryError={capped_unbounded['memory_error']})"
            )

        print("phase 3/3: unbounded, uncapped (MAE + peak baseline) ...")
        unbounded = spawn_phase(
            dict(base, bounded=False, spill_path=":memory:", label="unbounded")
        )
        print(
            f"  {unbounded['obs_per_sec']:,.0f} obs/s, "
            f"VmPeak {unbounded['vm_peak_bytes'] / 1e6:,.0f} MB"
        )

    bounded_mean = bounded["mean_windowed_mae"]
    unbounded_mean = unbounded["mean_windowed_mae"]
    rel_diff = (
        abs(bounded_mean - unbounded_mean) / unbounded_mean
        if unbounded_mean
        else 0.0
    )
    print(
        f"windowed mean relative error: bounded {bounded_mean:.6f} vs "
        f"unbounded {unbounded_mean:.6f} (rel diff {rel_diff:.2e})"
    )

    print("digest check: crash recovery with spilled entities ...")
    digest_check = run_digest_check(args.seed)
    print(
        f"  matches={digest_check['matches']} "
        f"digests_equal={digest_check['digests_equal']} "
        f"spilled at crash dir: {digest_check['spilled_users']} users, "
        f"{digest_check['spilled_services']} services"
    )

    checks = {
        "bounded_completed": bounded["completed"] is True,
        "mae_within_2pct": rel_diff <= 0.02,
        "digest_matches": digest_check["matches"]
        and digest_check["digests_equal"]
        and digest_check["spilled_users"] > 0,
    }
    if not args.smoke:
        checks["capped_unbounded_died"] = capped_unbounded["died"]
        checks["unbounded_peak_exceeds_cap"] = (
            unbounded["vm_peak_bytes"] > cap_bytes
        )
    failures = sorted(name for name, ok in checks.items() if not ok)

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "revision": git_revision(),
        "config": {
            "observations": args.observations,
            "n_services": args.services,
            "churn_prob": args.churn,
            "zipf_a": ZIPF_A,
            "hot_users": args.hot_users,
            "hot_services": args.hot_services,
            "window": args.window,
            "cap_headroom": CAP_HEADROOM,
            "seed": args.seed,
            "smoke": bool(args.smoke),
        },
        "bounded": bounded,
        "unbounded": unbounded,
        "capped_unbounded": capped_unbounded,
        "cap_bytes": cap_bytes,
        "mae_parity": {
            "bounded_mean": bounded_mean,
            "unbounded_mean": unbounded_mean,
            "rel_diff": round(rel_diff, 10),
        },
        "digest_check": digest_check,
        "pass": not failures,
        "failures": failures,
        "note": args.note,
    }

    problems = validate_record(record)
    if problems:
        raise SystemExit("record failed its own schema: " + "; ".join(problems))
    if failures:
        raise SystemExit(f"lifecycle bench FAILED: {', '.join(failures)}")

    if args.smoke and args.output is None:
        print("smoke OK (record validated, not appended)")
        return
    output = args.output or RESULTS_PATH
    history = json.loads(output.read_text()) if output.exists() else []
    if not isinstance(history, list):
        raise SystemExit(f"{output} does not hold a JSON array")
    history.append(record)
    output.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended to {output}")


if __name__ == "__main__":
    main()
