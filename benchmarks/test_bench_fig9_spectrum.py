"""Bench E-fig9: sorted normalized singular values of the QoS matrices.

Regenerates Fig. 9's two series and checks the low-rank shape that justifies
the factorization rank d = 10.
"""

from repro.experiments.spectrum import run_spectrum


def test_bench_fig9_spectrum(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_spectrum, args=(bench_scale,), kwargs={"top_k": 50}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())

    # Fig. 9 shape: spectra start at 1 and decay fast — the energy
    # concentrates in the first few singular values.
    for spectrum in (result.rt_spectrum, result.tp_spectrum):
        assert spectrum[0] == 1.0
        assert spectrum[9] < 0.35   # by the 10th value the tail is low
        assert spectrum[-1] < 0.15
    # The synthetic twin carries per-observation measurement noise (as the
    # real data does), so its 90%-energy rank is a loose bound, not d = 10.
    assert result.rt_effective_rank < bench_scale.n_users / 2
    assert result.tp_effective_rank < bench_scale.n_users / 2
