"""Scalar vs vectorized replay kernel: throughput and accuracy parity.

Not a paper artifact — this bench quantifies the conflict-free block
kernel's speedup over the sequential reference loop on the same warm model
(the ``test_bench_core_throughput`` configuration), and checks that the
speed does not come at an accuracy cost: both kernels run the full
``evaluate_amf`` protocol and must land on matching Section V-B metrics.

Run with ``pytest benchmarks/test_bench_replay_kernel.py --benchmark-only -s``
to see the steps/sec comparison and the metric rows.
"""

import numpy as np
import pytest

from repro.core import AdaptiveMatrixFactorization, AMFConfig
from repro.datasets import generate_dataset, train_test_split_matrix
from repro.datasets.schema import QoSRecord
from repro.experiments.runner import evaluate_amf, make_amf_config


def _warm_model(kernel, n_users=100, n_services=200, n_samples=5000, seed=0):
    model = AdaptiveMatrixFactorization(
        AMFConfig.for_response_time(kernel=kernel), rng=seed
    )
    rng = np.random.default_rng(seed)
    records = [
        QoSRecord(
            timestamp=float(k),
            user_id=int(rng.integers(n_users)),
            service_id=int(rng.integers(n_services)),
            value=float(rng.uniform(0.05, 5.0)),
        )
        for k in range(n_samples)
    ]
    model.observe_many(records)
    return model


@pytest.mark.parametrize("kernel", ["scalar", "vectorized"])
def test_bench_replay_kernel_throughput(benchmark, kernel):
    """Replay steps/sec per kernel on the shared warm-model configuration."""
    model = _warm_model(kernel)

    def replay_batch():
        model.replay_many(now=0.0, count=1000)

    benchmark(replay_batch)
    steps_per_sec = 1000.0 / benchmark.stats["mean"]
    print(f"\n  {kernel}: {steps_per_sec:,.0f} replay steps/sec")
    assert benchmark.stats["mean"] < 1.0


def test_kernel_accuracy_parity():
    """Both kernels land on matching MAE/MRE/NPRE under the full protocol."""
    matrix = generate_dataset(
        n_users=60, n_services=120, n_slices=1, seed=5
    ).slice(0)
    train, test = train_test_split_matrix(matrix, train_density=0.3, rng=5)
    config = make_amf_config("response_time")
    results = {
        kernel: evaluate_amf(train, test, config, rng=9, kernel=kernel)
        for kernel in ("scalar", "vectorized")
    }
    for metric in ("MAE", "MRE", "NPRE"):
        scalar_value = results["scalar"][metric]
        vectorized_value = results["vectorized"][metric]
        print(f"  {metric}: scalar={scalar_value:.4f} vectorized={vectorized_value:.4f}")
        # Same seeded stream and RNG draws: the kernels differ only by
        # floating-point ordering, so metrics must agree tightly.
        assert vectorized_value == pytest.approx(scalar_value, rel=0.02, abs=1e-3)
