"""Ablation benches for AMF's three design choices (DESIGN.md Section 5).

The paper motivates each ingredient — relative-error loss, adaptive weights,
and observation expiry — but only ablates the data transformation (Fig. 11,
covered by test_bench_fig11_transform).  These benches quantify the other
three on the synthetic twin:

* relative vs absolute loss  -> relative wins MRE/NPRE (the Eq. 6 argument);
* adaptive vs fixed weights  -> adaptive keeps existing entities stable
  under churn (the Eq. 12 argument);
* expiry on vs off           -> expiry keeps the model current under drift
  (the Algorithm 1 line 12-15 argument).
"""

import numpy as np

from repro.core import AdaptiveMatrixFactorization, AMFConfig, StreamTrainer
from repro.datasets import train_test_split_matrix
from repro.datasets.schema import QoSMatrix
from repro.datasets.stream import stream_from_matrix
from repro.experiments.runner import make_amf_config
from repro.metrics import mre, npre
from repro.utils.tables import render_table


def _train(train_matrix, config, rng, slice_start=0.0):
    model = AdaptiveMatrixFactorization(config, rng=rng)
    model.ensure_user(train_matrix.n_users - 1)
    model.ensure_service(train_matrix.n_services - 1)
    StreamTrainer(model).process(
        stream_from_matrix(train_matrix, slice_start=slice_start, rng=rng)
    )
    return model


def test_bench_ablation_relative_loss(benchmark, bench_scale):
    """Relative (Eq. 6) vs absolute (Eq. 5) loss, crossed with the transform.

    The two ingredients interact: after a well-tuned Box-Cox transform,
    absolute errors in transformed space already approximate relative errors
    in raw space, so the loss choice matters little; with plain linear
    normalization (alpha = 1), the relative loss is what rescues MRE.  The
    2x2 grid makes that interaction visible — and shows full AMF beating the
    "online PMF" corner (absolute loss, no transform) decisively.
    """
    matrix = bench_scale.dataset("response_time").slice(0)
    train, test = train_test_split_matrix(matrix, 0.3, rng=bench_scale.seed)
    rows, cols = test.observed_indices()
    actual = test.values[rows, cols]

    variants = {
        "boxcox+relative": make_amf_config("response_time"),
        "boxcox+absolute": make_amf_config("response_time", loss="absolute"),
        # alpha=1 variants use their own tuned rates (cf. Fig. 11 bench).
        "linear+relative": make_amf_config(
            "response_time", alpha=1.0, learning_rate=0.05
        ),
        "linear+absolute": make_amf_config("response_time", alpha=1.0, loss="absolute"),
    }

    def run():
        out = {}
        for name, config in variants.items():
            model = _train(train, config, rng=bench_scale.seed)
            predicted = model.predict_matrix()[rows, cols]
            out[name] = (mre(predicted, actual), npre(predicted, actual))
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["variant", "MRE", "NPRE"],
            [[name, *values] for name, values in result.items()],
            title="Ablation — loss x transform (RT, density 30%)",
        )
    )
    # Without the transform, the relative loss is what keeps MRE usable.
    assert result["linear+relative"][0] < result["linear+absolute"][0]
    # With the tuned transform, the loss choice is second-order (within 10%)
    # but the relative loss still wins the tail (NPRE).
    assert result["boxcox+relative"][0] < result["boxcox+absolute"][0] * 1.1
    assert result["boxcox+relative"][1] < result["boxcox+absolute"][1]
    # Full AMF crushes the no-transform/absolute-loss corner.
    assert result["boxcox+relative"][0] < 0.7 * result["linear+absolute"][0]


def test_bench_ablation_adaptive_weights(benchmark, bench_scale):
    """Adaptive credence weights vs fixed 50/50 weights under churn.

    ``beta = 0`` freezes every EMA error at its initial value, so both
    credence weights stay 0.5 — exactly the fixed-weight model the paper
    contrasts against (reference [26]).
    """
    matrix = bench_scale.dataset("response_time").slice(0)
    train, test = train_test_split_matrix(matrix, 0.3, rng=bench_scale.seed)
    n_existing_users = int(0.8 * matrix.n_users)
    n_existing_services = int(0.8 * matrix.n_services)

    existing_train = QoSMatrix(values=train.values.copy(), mask=train.mask.copy())
    existing_train.mask[n_existing_users:, :] = False
    existing_train.mask[:, n_existing_services:] = False
    newcomer_train = QoSMatrix(
        values=train.values.copy(), mask=train.mask & ~existing_train.mask
    )
    existing_test = QoSMatrix(values=test.values.copy(), mask=test.mask.copy())
    existing_test.mask[n_existing_users:, :] = False
    existing_test.mask[:, n_existing_services:] = False
    rows, cols = existing_test.observed_indices()
    actual = existing_test.values[rows, cols]

    def run():
        out = {}
        for name, beta in (("adaptive", 0.3), ("fixed", 0.0)):
            config = make_amf_config("response_time", beta=beta)
            model = _train(existing_train, config, rng=bench_scale.seed)
            before = mre(model.predict_matrix()[rows, cols], actual)
            # 20% of users and services join with one pass of their data.
            model.observe_many(
                list(stream_from_matrix(newcomer_train, rng=bench_scale.seed))
            )
            after = mre(model.predict_matrix()[rows, cols], actual)
            out[name] = (before, after, after - before)
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["weights", "MRE before join", "MRE after join", "drift"],
            [[name, *values] for name, values in result.items()],
            title="Ablation — adaptive vs fixed weights (existing entities)",
        )
    )
    # Adaptive weights keep the existing entities at least as stable as
    # fixed weights do, and never leave them worse off overall.
    assert result["adaptive"][2] <= result["fixed"][2] + 0.02
    assert result["adaptive"][1] <= result["fixed"][1] + 0.02


def test_bench_ablation_expiry(benchmark, bench_scale):
    """Observation expiry on vs off across a QoS regime shift.

    On mean-reverting fluctuation (the generator's AR(1)), stale samples
    still carry signal about each pair's mean, so expiry is accuracy-neutral
    there — its value shows when conditions *change for good*.  This bench
    degrades a third of the services by 4x between two slices (services
    overloaded, routes rerouted); without expiry, replay keeps dragging
    predictions toward the stale pre-shift values.
    """
    matrix = bench_scale.dataset("response_time").slice(0)
    shifted_services = np.arange(0, matrix.n_services, 3)
    shifted_values = matrix.values.copy()
    shifted_values[:, shifted_services] = np.clip(
        shifted_values[:, shifted_services] * 4.0, 0.0, 20.0
    )
    after_shift = QoSMatrix(values=shifted_values, mask=matrix.mask.copy())

    train0, __ = train_test_split_matrix(matrix, 0.3, rng=bench_scale.seed)
    train1, test1 = train_test_split_matrix(after_shift, 0.3, rng=bench_scale.seed + 1)
    shifted_mask = np.zeros(matrix.n_services, dtype=bool)
    shifted_mask[shifted_services] = True
    rows, cols = np.nonzero(test1.mask & shifted_mask[None, :])
    actual = after_shift.values[rows, cols]

    def run():
        out = {}
        for name, expiry in (("expiry on", 900.0), ("expiry off", 1e12)):
            config = make_amf_config("response_time", expiry_seconds=expiry)
            model = AdaptiveMatrixFactorization(config, rng=bench_scale.seed)
            model.ensure_user(matrix.n_users - 1)
            model.ensure_service(matrix.n_services - 1)
            trainer = StreamTrainer(model)
            trainer.process(
                stream_from_matrix(train0, slice_id=0, rng=bench_scale.seed)
            )
            trainer.process(
                stream_from_matrix(
                    train1,
                    slice_id=1,
                    slice_start=900.0,
                    slice_seconds=900.0,
                    rng=bench_scale.seed + 1,
                )
            )
            out[name] = (
                mre(model.predict_matrix()[rows, cols], actual),
                model.n_stored_samples,
            )
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["variant", "post-shift MRE", "retained samples"],
            [[name, *values] for name, values in result.items()],
            title="Ablation — observation expiry across a regime shift",
        )
    )
    # Expiry keeps the replay store bounded to the recent window...
    assert result["expiry on"][1] < result["expiry off"][1]
    # ...and is what lets the model track the shifted services.
    assert result["expiry on"][0] < 0.8 * result["expiry off"][0]
