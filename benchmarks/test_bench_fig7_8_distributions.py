"""Bench E-fig7/8: QoS value distributions, raw and transformed.

Regenerates the density histograms of Fig. 7 (skewed raw values, cut at
10 s / 150 kbps) and Fig. 8 (near-uniform-on-[0,1] transformed values).
"""

import pytest

from repro.experiments.distributions import run_distributions


@pytest.mark.parametrize("attribute", ["response_time", "throughput"])
def test_bench_fig7_8_distributions(benchmark, bench_scale, attribute):
    result = benchmark.pedantic(
        run_distributions,
        args=(bench_scale,),
        kwargs={"attribute": attribute},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    # Fig. 7 shape: raw data is strongly right-skewed.
    assert result.skewness_raw > 1.0
    # Fig. 8 shape: the Box-Cox pipeline removes most of the skew.
    assert abs(result.skewness_transformed) < result.skewness_raw / 2
