"""Bench E-fig10: distribution of signed prediction errors.

Regenerates Fig. 10 for both attributes at 10% density: error histograms
for UIPCC, PMF, and AMF.  Shape: AMF's distribution is the most sharply
peaked around zero; the baselines are flatter.
"""

import pytest

from repro.experiments.error_dist import run_error_dist


@pytest.mark.parametrize("attribute", ["response_time", "throughput"])
def test_bench_fig10_error_dist(benchmark, bench_scale, attribute):
    result = benchmark.pedantic(
        run_error_dist,
        args=(bench_scale,),
        kwargs={"attribute": attribute, "density": 0.10},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    assert result.central_mass["AMF"] > result.central_mass["UIPCC"]
    assert result.central_mass["AMF"] > result.central_mass["PMF"]
