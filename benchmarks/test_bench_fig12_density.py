"""Bench E-fig12: impact of matrix density on AMF accuracy.

Regenerates Fig. 12: MAE/MRE/NPRE for AMF over densities 5%..50%.
Shape: every metric falls as density rises, with the steepest drop at the
sparsest settings (the overfitting-relief effect the paper describes).
"""

import pytest

from repro.experiments.density_impact import run_density_impact


@pytest.mark.parametrize("attribute", ["response_time", "throughput"])
def test_bench_fig12_density(benchmark, bench_scale, attribute):
    result = benchmark.pedantic(
        run_density_impact,
        args=(bench_scale,),
        kwargs={"attribute": attribute},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    for metric in ("MAE", "MRE", "NPRE"):
        series = result.metrics[metric]
        # Monotone-ish decrease: the densest setting clearly beats the
        # sparsest, and the early drop dominates the late one.
        assert series[-1] < series[0], metric
        early_drop = series[0] - series[1]   # 5% -> 10%
        late_drop = max(series[-2] - series[-1], 0.0)  # 45% -> 50%
        assert early_drop >= late_drop - 1e-9, metric
