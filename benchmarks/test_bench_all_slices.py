"""Bench (supplementary): Table I averaged over all time slices.

The published Table I covers the first slice; the supplementary report
extends it over all 64.  Here the offline baselines refit per slice while
AMF runs online through the whole sequence — its error *improves* at later
slices as history accumulates, while the per-slice baselines stay flat.
"""

import numpy as np

from repro.experiments.all_slices import run_all_slices


def test_bench_all_slices(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_all_slices,
        args=(bench_scale,),
        kwargs={"density": 0.10},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    # AMF dominates the averages over all slices, as in the supplementary.
    for metric in ("MRE", "NPRE"):
        best_other = min(
            result.average(name, metric) for name in result.per_slice if name != "AMF"
        )
        assert result.average("AMF", metric) < best_other, metric

    # Online history helps: AMF's later-slice MRE is no worse than slice 0's.
    amf_series = result.series("AMF", "MRE")
    assert np.mean(amf_series[1:]) <= amf_series[0] + 0.01
