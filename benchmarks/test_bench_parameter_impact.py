"""Bench (supplementary): hyper-parameter sensitivity of AMF.

Sweeps rank d, learning rate eta, EMA factor beta, and regularization
lambda against MRE, confirming that the paper's chosen values sit in the
flat/optimal region of each curve.
"""

from repro.experiments.parameter_impact import run_parameter_impact

PAPER_VALUES = {"rank": 10, "learning_rate": 0.8, "beta": 0.3, "lambda": 1e-3}


def test_bench_parameter_impact(benchmark, bench_scale):
    def run():
        return {
            parameter: run_parameter_impact(bench_scale, parameter=parameter)
            for parameter in PAPER_VALUES
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for parameter, result in results.items():
        print(result.to_text())
        print()

    for parameter, paper_value in PAPER_VALUES.items():
        result = results[parameter]
        best_mre = min(result.mre)
        paper_idx = result.values.index(paper_value)
        # The paper's setting is near the best swept MRE — the published
        # hyper-parameters sit on the flat region of each curve.  The bound
        # is 30% because the synthetic twin's optimum can shift one notch
        # along a sweep (e.g. it tolerates a larger learning rate than the
        # real data the paper tuned on).
        assert result.mre[paper_idx] <= best_mre * 1.3, parameter
