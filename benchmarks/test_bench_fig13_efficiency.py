"""Bench E-fig13: convergence time per time slice.

Regenerates Fig. 13: wall-clock convergence time across consecutive slices
for UIPCC, PMF, an AMF retrained from scratch each slice, and the live
online AMF.

Shape: the online AMF's per-slice cost drops after slice 0 and undercuts
retraining the same model from scratch — the online-learning benefit.
(Absolute comparisons against UIPCC/PMF differ from the paper because those
baselines are vectorized numpy while AMF is per-sample Python; the
"AMF (retrain)" column is the like-for-like comparator.  See EXPERIMENTS.md.)
"""

import numpy as np

from repro.experiments.efficiency import run_efficiency


def test_bench_fig13_efficiency(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_efficiency,
        args=(bench_scale,),
        kwargs={"density": 0.30},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    online = result.seconds["AMF"]
    retrain = result.seconds["AMF (retrain)"]
    assert len(online) == bench_scale.n_slices

    # Later slices are cheaper for the online model than retraining the same
    # implementation from scratch (averaged over slices 1..n to absorb
    # scheduler noise), and far cheaper than the slice-0 full training.
    online_later = float(np.mean(online[1:]))
    retrain_later = float(np.mean(retrain[1:]))
    assert online_later < retrain_later
    assert online_later < 0.6 * online[0]

    # The offline baselines pay a roughly flat cost every slice.
    for name in ("UIPCC", "PMF"):
        series = result.seconds[name]
        assert max(series) < 10 * (min(series) + 1e-3)
