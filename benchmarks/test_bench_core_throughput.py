"""Micro-benchmarks of AMF's hot paths.

Not a paper artifact — these track the implementation's raw throughput
(online updates/second, replay throughput, dense prediction) so performance
regressions in the per-sample loop are caught by the benchmark suite.
"""

import numpy as np

from repro.core import AdaptiveMatrixFactorization, AMFConfig
from repro.datasets.schema import QoSRecord


def _warm_model(n_users=100, n_services=200, n_samples=5000, seed=0):
    model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=seed)
    rng = np.random.default_rng(seed)
    records = [
        QoSRecord(
            timestamp=float(k),
            user_id=int(rng.integers(n_users)),
            service_id=int(rng.integers(n_services)),
            value=float(rng.uniform(0.05, 5.0)),
        )
        for k in range(n_samples)
    ]
    model.observe_many(records)
    return model, records


def test_bench_observe_throughput(benchmark):
    """Arrival-path updates (Algorithm 1 lines 3-9) per second."""
    model, records = _warm_model()
    batch = records[:1000]

    def observe_batch():
        model.observe_many(batch)

    benchmark(observe_batch)
    # Sanity floor: the online path must sustain thousands of updates/s,
    # or "online" stops being meaningful at WS-DREAM arrival rates.
    assert benchmark.stats["mean"] < 1.0  # >1k updates/sec


def test_bench_replay_throughput(benchmark):
    """Replay-path updates (Algorithm 1 lines 11-15) per second."""
    model, __ = _warm_model()

    def replay_batch():
        model.replay_many(now=0.0, count=1000)

    benchmark(replay_batch)
    assert benchmark.stats["mean"] < 1.0


def test_bench_predict_matrix(benchmark):
    """Dense prediction over all known users x services."""
    model, __ = _warm_model()
    result = benchmark(model.predict_matrix)
    assert result.shape == (model.n_users, model.n_services)


def test_bench_single_prediction(benchmark):
    """Point prediction latency — the adaptation-decision critical path."""
    model, __ = _warm_model()
    benchmark(model.predict, 5, 10)
    assert benchmark.stats["mean"] < 1e-3  # sub-millisecond
