"""Bench E-fig2/E-fig6: dataset characterization.

Regenerates Fig. 6 (the data-statistics table) and the two Fig. 2 series
(per-pair response time over the slices; sorted response times across users
on one service).
"""

import numpy as np

from repro.experiments.data_stats import run_data_stats


def test_bench_fig2_fig6_data_stats(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_data_stats, args=(bench_scale,), rounds=1, iterations=1
    )
    print()
    print(result.to_text())

    # Fig. 6 shape: ranges and averages match the paper's dataset profile.
    assert result.rt_stats["max"] <= 20.0
    assert 0.8 < result.rt_stats["mean"] < 2.0  # paper: 1.33 s
    assert result.tp_stats["max"] <= 7000.0

    # Fig. 2(a) shape: fluctuation around a stable mean, not a flat line.
    series = result.pair_series
    assert series.std() > 0.05 * series.mean()
    assert series.std() < 2.0 * series.mean()

    # Fig. 2(b) shape: large user-to-user variation on one service.
    assert result.user_series[-1] > 2.0 * max(result.user_series[0], 1e-3)
