"""Bench (extension): AMF vs the strongest batch comparator (BiasedMF).

The paper's baselines predate bias-augmented factorization; this bench adds
BiasedMF (mu + b_i + c_j + U.S with a sigmoid link) to a Table I-style
comparison at two densities, asking whether AMF's advantage survives a
tougher modern offline model.  Expected shape: BiasedMF clearly beats PMF,
narrows the MRE gap to AMF, but AMF keeps the NPRE (tail) advantage — and
remains the only online option.
"""

import pytest

from repro.experiments.accuracy import run_table1


@pytest.mark.parametrize("attribute", ["response_time"])
def test_bench_extended_accuracy(benchmark, bench_scale, attribute):
    result = benchmark.pedantic(
        run_table1,
        args=(bench_scale,),
        kwargs={
            "attributes": (attribute,),
            "densities": (0.10, 0.30),
            "approaches": ["PMF", "BiasedMF", "AMF"],
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    for density in (0.10, 0.30):
        cell = result.results[attribute][density]
        # The bias extension is a real improvement over plain PMF...
        assert cell["BiasedMF"].metrics["MRE"] < cell["PMF"].metrics["MRE"], density
        # ...and AMF still wins the tail against it.
        assert cell["AMF"].metrics["NPRE"] < cell["BiasedMF"].metrics["NPRE"], density
