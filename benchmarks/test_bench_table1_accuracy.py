"""Bench E-tab1: Table I — accuracy comparison of the five approaches.

Regenerates the paper's headline table: MAE/MRE/NPRE for UPCC, IPCC, UIPCC,
PMF, and AMF at matrix densities 10%..50%, for both QoS attributes, plus
the Improve.(%) row (AMF vs the most competitive other approach).

Shape expectations (Section V-C): AMF wins MRE and NPRE at every density —
by the largest margin on NPRE — while staying comparable on MAE.
"""

import pytest

from repro.experiments.accuracy import run_table1


@pytest.mark.parametrize("attribute", ["response_time", "throughput"])
def test_bench_table1_accuracy(benchmark, bench_scale, attribute):
    result = benchmark.pedantic(
        run_table1,
        args=(bench_scale,),
        kwargs={"attributes": (attribute,)},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    for density in result.densities:
        cell = result.results[attribute][density]
        best_other_mre = min(
            cell[name].metrics["MRE"] for name in cell if name != "AMF"
        )
        best_other_npre = min(
            cell[name].metrics["NPRE"] for name in cell if name != "AMF"
        )
        # AMF dominates the relative-error metrics at every density.
        assert cell["AMF"].metrics["MRE"] < best_other_mre, density
        assert cell["AMF"].metrics["NPRE"] < best_other_npre, density
        # NPRE improvement exceeds MRE improvement (the paper's pattern).
        assert (
            result.improvement(attribute, density, "NPRE")
            >= result.improvement(attribute, density, "MRE") - 5.0
        )
        # MAE stays comparable: within 40% of the best baseline.
        best_other_mae = min(
            cell[name].metrics["MAE"] for name in cell if name != "AMF"
        )
        assert cell["AMF"].metrics["MAE"] < 1.4 * best_other_mae
