"""Bench (extension): candidate-selection decision quality.

Not a paper artifact — the paper motivates adaptation decisions but scores
only value accuracy.  This bench regenerates the decision-level comparison:
top-k hit rates, selection regret, and SLA-call accuracy per approach, plus
the coverage gap of per-pair time-series predictors (the prior
working-service art cannot score candidate services at all).
"""

from repro.experiments.selection_quality import run_selection_quality


def test_bench_selection_quality(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_selection_quality,
        args=(bench_scale,),
        kwargs={"density": 0.10},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    amf = result.metrics["AMF"]
    for name, metrics in result.metrics.items():
        if name == "AMF":
            continue
        # AMF makes the best adaptation decisions across the board.
        assert amf["top-1 hit"] >= metrics["top-1 hit"], name
        assert amf["regret (s)"] <= metrics["regret (s)"] * 1.1, name

    # Better than picking a candidate at random (expected hit = 1/pool).
    assert amf["top-1 hit"] > 2.0 / result.pool_size

    # The prior working-service art cannot score candidate pools at all.
    assert result.timeseries_coverage < 0.05
