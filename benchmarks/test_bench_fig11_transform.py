"""Bench E-fig11: impact of the data transformation on MRE.

Regenerates Fig. 11: MRE across densities for PMF, AMF(alpha=1) (Box-Cox
masked, linear normalization only), and AMF with the tuned alpha.
Shape: AMF < AMF(alpha=1) < PMF at every density.
"""

import pytest

from repro.experiments.transform_impact import run_transform_impact


@pytest.mark.parametrize("attribute", ["response_time", "throughput"])
def test_bench_fig11_transform(benchmark, bench_scale, attribute):
    result = benchmark.pedantic(
        run_transform_impact,
        args=(bench_scale,),
        kwargs={"attribute": attribute},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    for k, density in enumerate(result.densities):
        assert result.mre["AMF"][k] < result.mre["PMF"][k], density
        # The tuned transform never loses to the linear one by more than
        # noise; at most densities it wins outright.
        assert result.mre["AMF"][k] <= result.mre["AMF(alpha=1)"][k] * 1.05, density
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(result.mre["AMF"]) < mean(result.mre["AMF(alpha=1)"])
