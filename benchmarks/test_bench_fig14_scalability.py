"""Bench E-fig14: scalability and robustness under churn.

Regenerates Fig. 14: MRE over time with 80% of users/services trained to
convergence and the remaining 20% injected mid-run.

Shape: new-entity MRE starts high at the join and drops rapidly; the
existing entities' MRE stays flat (adaptive weights shield converged
factors from unconverged newcomers).
"""

import numpy as np

from repro.experiments.scalability import run_scalability


def test_bench_fig14_scalability(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_scalability,
        args=(bench_scale,),
        kwargs={"density": 0.30},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())
    print(
        f"existing-entity MRE drift: {result.existing_drift():+.4f}; "
        f"new-entity MRE improvement: {result.new_entity_improvement():.4f}"
    )

    # Existing entities are barely perturbed by the join.
    assert abs(result.existing_drift()) < 0.1

    # New entities integrate: their MRE drops from the first post-join
    # checkpoint to the end of the run.
    post_join = [cp.mre_new for cp in result.checkpoints if np.isfinite(cp.mre_new)]
    assert len(post_join) >= 2
    assert post_join[-1] < post_join[0]

    # And they converge toward the existing entities' accuracy.
    final = result.checkpoints[-1]
    assert final.mre_new < 1.5 * final.mre_existing
