"""Shared configuration for the paper-reproduction benchmarks.

Every bench regenerates one of the paper's tables or figures and prints the
corresponding rows/series (run with ``pytest benchmarks/ --benchmark-only -s``
to see them).  The dataset scale is controlled by ``REPRO_BENCH_SCALE``:

* ``quick`` (default) — 142 users x 300 services; minutes for the full set,
  preserving every qualitative shape of the paper's results.
* ``paper`` — 142 x 4500 x 64, 20 reruns; the full-scale reproduction
  (hours; use for the final EXPERIMENTS.md numbers only).
* ``tiny``  — CI smoke scale.
"""

import os

import pytest

from repro.experiments.runner import ExperimentScale


def _resolve_scale() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if name == "paper":
        return ExperimentScale.paper()
    if name == "tiny":
        return ExperimentScale.tiny()
    if name == "quick":
        # reruns=2 keeps the full bench suite in the ~10 minute range while
        # still averaging out stream-order noise.
        return ExperimentScale.quick().with_updates(reruns=2)
    raise ValueError(
        f"REPRO_BENCH_SCALE must be quick|paper|tiny, got {name!r}"
    )


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return _resolve_scale()
