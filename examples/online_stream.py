"""Online tracking of time-varying QoS across many time slices.

QoS drifts from slice to slice (Fig. 2(a) of the paper).  This example feeds
eight 15-minute slices to one live AMF model and, for contrast, retrains a
batch PMF model from scratch at every slice — showing that the online model
(a) stays accurate as values drift and (b) pays a fraction of the per-slice
cost after the first slice.

Run:  python examples/online_stream.py
"""

import time

from repro import AdaptiveMatrixFactorization, AMFConfig, StreamTrainer
from repro.baselines import PMF, PMFConfig
from repro.datasets import generate_dataset, train_test_split_matrix
from repro.datasets.stream import stream_from_matrix
from repro.metrics import mre


def main() -> None:
    data = generate_dataset(n_users=80, n_services=200, n_slices=8, seed=1)
    model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=1)
    model.ensure_user(data.n_users - 1)
    model.ensure_service(data.n_services - 1)
    trainer = StreamTrainer(model)

    print(f"{'slice':>5} | {'AMF MRE':>8} {'AMF cost':>9} {'steps/sec':>10} | "
          f"{'PMF MRE':>8} {'PMF cost':>9}")
    for t in range(data.n_slices):
        matrix = data.slice(t)
        train, test = train_test_split_matrix(matrix, train_density=0.3, rng=100 + t)
        rows, cols = test.observed_indices()
        actual = test.values[rows, cols]

        # Online: the live model absorbs this slice's observation stream.
        stream = stream_from_matrix(
            train,
            slice_id=t,
            slice_start=t * data.slice_seconds,
            slice_seconds=data.slice_seconds,
            rng=100 + t,
        )
        started = time.perf_counter()
        report = trainer.process(stream)
        amf_cost = time.perf_counter() - started
        amf_steps = report.arrivals + report.replays
        amf_rate = amf_steps / report.wall_seconds if report.wall_seconds else 0.0
        amf_mre = mre(model.predict_matrix()[rows, cols], actual)

        # Offline: PMF must retrain from scratch to see the new slice.
        started = time.perf_counter()
        pmf = PMF(PMFConfig(), rng=100 + t).fit(train)
        pmf_cost = time.perf_counter() - started
        pmf_mre = mre(pmf.predict_entries(rows, cols), actual)

        print(f"{t:>5} | {amf_mre:>8.3f} {amf_cost:>8.2f}s {amf_rate:>10,.0f} | "
              f"{pmf_mre:>8.3f} {pmf_cost:>8.2f}s")

    print(f"\ntotal online updates applied: {model.updates_applied}, "
          f"samples currently retained: {model.n_stored_samples} "
          f"(older slices expired per the 15-minute window)")
    print(f"replay kernel: {model.config.kernel!r} "
          f"(steps/sec column counts arrival + replay SGD steps per wall second; "
          f"switch with AMFConfig(kernel='scalar'))")


if __name__ == "__main__":
    main()
