"""Workflow-level QoS and cost-aware adaptation.

Composes a workflow with parallel and loop structure (the Fig. 1 style of
application logic), uses the aggregation rules of Zeng et al. to compute
its *end-to-end* predicted response time under different candidate
bindings, and contrasts the plain threshold policy against the cost-aware
one when the fastest candidates carry invocation prices.

Run:  python examples/workflow_composition.py
"""

import numpy as np

from repro.adaptation import (
    SLA,
    AbstractTask,
    CostAwarePolicy,
    ExecutionEngine,
    Loop,
    Parallel,
    QoSPredictionService,
    Sequence_,
    ServiceRegistry,
    Task,
    TensorQoSOracle,
    ThresholdPolicy,
    Workflow,
    predicted_workflow_qos,
)
from repro.core import AMFConfig
from repro.datasets import generate_dataset

CANDIDATES_PER_TASK = 12
TASKS = ["ingest", "enrich", "score", "persist"]


def build_world(seed: int = 21):
    n_services = len(TASKS) * CANDIDATES_PER_TASK
    data = generate_dataset(n_users=20, n_services=n_services, n_slices=6, seed=seed)
    oracle = TensorQoSOracle(data, noise_sigma=0.05, rng=seed)
    registry = ServiceRegistry()
    for k, task in enumerate(TASKS):
        for j in range(CANDIDATES_PER_TASK):
            registry.register(k * CANDIDATES_PER_TASK + j, task)
    workflow = Workflow(
        name="scoring-pipeline",
        tasks=[AbstractTask(name, name) for name in TASKS],
    )
    # Design-time binding gone stale: each task starts on the candidate that
    # is slowest for user 0 at runtime (the situation adaptation exists for).
    for k, task in enumerate(TASKS):
        pool = range(k * CANDIDATES_PER_TASK, (k + 1) * CANDIDATES_PER_TASK)
        worst = max(pool, key=lambda s: data.tensor[0, 0, s])
        workflow.bind(task, worst)
    # ingest ; (enrich || score) ; persist x2
    composition = Sequence_(
        [
            Task("ingest"),
            Parallel([Task("enrich"), Task("score")]),
            Loop(Task("persist"), iterations=2),
        ]
    )
    return data, oracle, registry, workflow, composition


def seed_predictor(predictor, oracle, data, seed):
    rng = np.random.default_rng(seed)
    # Other users' uploads (the collaborative signal) ...
    for __ in range(4000):
        u = int(rng.integers(1, 20))
        s = int(rng.integers(0, data.n_services))
        t = float(rng.random() * data.slice_seconds)
        predictor.report_observation(u, s, oracle.value(u, s, t), t)
    # ... plus a little of user 0's own history, as any running application
    # has — without it user 0's latent factors are still random noise.
    for __ in range(100):
        s = int(rng.integers(0, data.n_services))
        t = float(rng.random() * data.slice_seconds)
        predictor.report_observation(0, s, oracle.value(0, s, t), t)


def main() -> None:
    data, oracle, registry, workflow, composition = build_world()
    predictor = QoSPredictionService(AMFConfig.for_response_time(), rng=21)
    seed_predictor(predictor, oracle, data, seed=21)

    # 1. Workflow-level prediction before running anything.
    initial = predicted_workflow_qos(
        composition, {t: workflow.bound_service(t) for t in TASKS}, predictor, user_id=0
    )
    print(f"predicted end-to-end response time of the initial binding: {initial:.2f}s")

    # Best predicted binding per task -> best achievable workflow QoS.
    best_bindings = {}
    for task in TASKS:
        best, __ = predictor.best_candidate(0, registry.candidates_for(task))
        best_bindings[task] = best
    best = predicted_workflow_qos(composition, best_bindings, predictor, user_id=0)
    print(f"predicted end-to-end response time of the best binding:    {best:.2f}s\n")

    # 2. Run with a plain threshold policy vs a cost-aware one: the fastest
    # third of each candidate pool charges per invocation.
    rng = np.random.default_rng(21)
    prices = {}
    for task_index in range(len(TASKS)):
        pool = list(
            range(task_index * CANDIDATES_PER_TASK, (task_index + 1) * CANDIDATES_PER_TASK)
        )
        by_speed = sorted(pool, key=lambda s: data.tensor[0, 0, s])
        for premium in by_speed[: CANDIDATES_PER_TASK // 3]:
            prices[premium] = float(rng.uniform(1.0, 3.0))

    sla = SLA(attribute="response_time", threshold=1.5)
    for label, policy in (
        ("threshold", ThresholdPolicy(sla, improvement_margin=0.05)),
        ("cost-aware", CostAwarePolicy(sla, prices=prices, cost_weight=0.4,
                                       improvement_margin=0.05)),
    ):
        __, oracle_run, registry_run, workflow_run, __ = build_world()
        predictor_run = QoSPredictionService(AMFConfig.for_response_time(), rng=21)
        seed_predictor(predictor_run, oracle_run, data, seed=21)
        engine = ExecutionEngine(
            user_id=0,
            workflow=workflow_run,
            registry=registry_run,
            predictor=predictor_run,
            policy=policy,
            oracle=oracle_run,
            sla=sla,
        )
        stats = engine.run(start=0.0, interval=45.0, count=120)
        premium_bound = sum(
            1 for t in TASKS if workflow_run.bound_service(t) in prices
        )
        print(
            f"{label:>10}: mean workflow time {stats.mean_execution_time:.2f}s, "
            f"{stats.adaptations} adaptations, "
            f"{premium_bound}/{len(TASKS)} tasks ended on premium services"
        )


if __name__ == "__main__":
    main()
