"""Running the QoS prediction service over HTTP (the Fig. 3 deployment).

Starts the prediction server (with its background replay daemon), has
several simulated applications upload their observed QoS through the HTTP
interface, and queries candidate predictions back — the full
"collaborate by uploading, benefit by querying" loop of the paper's
architecture, over a real network socket.

Run:  python examples/prediction_service.py
"""

import time

import numpy as np

from repro.core import AMFConfig
from repro.datasets import generate_dataset
from repro.metrics import mre
from repro.server import PredictionClient, PredictionServer

N_USERS = 20
N_SERVICES = 60


def main() -> None:
    data = generate_dataset(n_users=N_USERS, n_services=N_SERVICES, n_slices=1, seed=4)
    truth = data.tensor[0]

    with PredictionServer(AMFConfig.for_response_time(), rng=4) as server:
        host, port = server.address
        print(f"prediction service listening on http://{host}:{port}")

        # Each application (user) uploads ~40% of its own observations.
        rng = np.random.default_rng(4)
        uploaded = np.zeros((N_USERS, N_SERVICES), dtype=bool)
        for user_id in range(N_USERS):
            client = PredictionClient(server.address)
            services = rng.choice(N_SERVICES, size=int(0.4 * N_SERVICES), replace=False)
            observations = [
                {
                    "timestamp": float(rng.random() * 900),
                    "user_id": user_id,
                    "service_id": int(s),
                    "value": float(truth[user_id, s]),
                }
                for s in services
            ]
            client.report_observations(observations)
            uploaded[user_id, services] = True
        client = PredictionClient(server.address)
        print(f"uploaded {int(uploaded.sum())} observations from {N_USERS} applications")

        # Let the background daemon replay for a moment.
        deadline = time.time() + 5.0
        while client.status()["background_replays"] < 30_000 and time.time() < deadline:
            time.sleep(0.05)
        status = client.status()
        print(f"server status: {status}")

        # Query candidate predictions for services user 0 never invoked.
        candidates = [int(s) for s in np.nonzero(~uploaded[0])[0]][:12]
        predictions = client.predict_candidates(0, candidates)
        actual = {s: float(truth[0, s]) for s in candidates}
        print(f"\n{'service':>8} | {'predicted':>9} | {'actual':>7}")
        for s in candidates[:6]:
            print(f"{s:>8} | {predictions[s]:>8.3f}s | {actual[s]:>6.3f}s")
        error = mre(
            np.array([predictions[s] for s in candidates]),
            np.array([actual[s] for s in candidates]),
        )
        print(f"\ncandidate-prediction MRE for user 0 over HTTP: {error:.3f}")
        best = min(predictions, key=predictions.get)
        print(f"best predicted candidate: service {best} "
              f"({predictions[best]:.3f}s predicted, {actual[best]:.3f}s actual)")


if __name__ == "__main__":
    main()
