"""Scalability under churn: new users and services joining a live model.

Recreates the paper's Fig. 14 scenario through the public API: warm the AMF
model up on 80% of users/services, then inject the remaining 20% as brand
new entities and keep training online.  The adaptive weights let newcomers
converge fast while barely perturbing the already-converged factors.

Run:  python examples/churn_scalability.py
"""

from repro.experiments.runner import ExperimentScale
from repro.experiments.scalability import run_scalability


def main() -> None:
    result = run_scalability(
        ExperimentScale(n_users=100, n_services=250, n_slices=1, reruns=1, seed=11),
        checkpoint_updates=10_000,
    )
    print(result.to_text())
    print()
    drift = result.existing_drift()
    improvement = result.new_entity_improvement()
    print(f"existing-entity MRE drift across the join: {drift:+.4f} "
          f"(near zero = churn-robust)")
    print(f"new-entity MRE drop after joining:         {improvement:.4f} "
          f"(newcomers integrate without a model retrain)")
    last = result.checkpoints[-1]
    if last.wall_seconds > 0:
        print(f"sustained training throughput:             "
              f"{last.updates / last.wall_seconds:,.0f} SGD steps/sec "
              f"(vectorized conflict-free replay kernel)")


if __name__ == "__main__":
    main()
