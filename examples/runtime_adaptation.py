"""End-to-end runtime service adaptation (the paper's Section III loop).

Builds a three-task workflow (like Fig. 1's A -> B -> C), registers a pool
of functionally equivalent candidate services per task, and runs the
execution engine: every invocation is observed, reported to the AMF-backed
QoS prediction service, and checked by a threshold adaptation policy that
replaces a working service with the best-*predicted* candidate when its SLA
is violated.  A no-adaptation control run quantifies the benefit.

Run:  python examples/runtime_adaptation.py
"""

import numpy as np

from repro.adaptation import (
    SLA,
    AbstractTask,
    ExecutionEngine,
    QoSPredictionService,
    ServiceRegistry,
    TensorQoSOracle,
    ThresholdPolicy,
    UserManager,
    Workflow,
)
from repro.adaptation.policies import AdaptationPolicy
from repro.core import AMFConfig
from repro.datasets import generate_dataset

N_TASKS = 3
CANDIDATES_PER_TASK = 20
USER_ID = 0
EXECUTIONS = 200
SLA_THRESHOLD = 2.0  # seconds


class NoAdaptation(AdaptationPolicy):
    """Control policy: never rebinds anything."""

    def on_observation(self, *args, **kwargs):
        return None


def build_world(seed: int):
    """Dataset, registry, and a freshly bound workflow."""
    n_services = N_TASKS * CANDIDATES_PER_TASK
    data = generate_dataset(n_users=30, n_services=n_services, n_slices=8, seed=seed)
    oracle = TensorQoSOracle(data, noise_sigma=0.1, rng=seed)

    registry = ServiceRegistry()
    tasks = []
    for k in range(N_TASKS):
        task_type = f"task-{chr(ord('A') + k)}"
        tasks.append(AbstractTask(name=task_type, task_type=task_type))
        for j in range(CANDIDATES_PER_TASK):
            registry.register(k * CANDIDATES_PER_TASK + j, task_type)

    workflow = Workflow(name="order-pipeline", tasks=tasks)
    # Initial binding: the first candidate of each pool (design-time choice,
    # oblivious to this user's network conditions).
    for k, task in enumerate(tasks):
        workflow.bind(task.name, k * CANDIDATES_PER_TASK)
    return data, oracle, registry, workflow


def run(policy: AdaptationPolicy, seed: int = 7):
    data, oracle, registry, workflow = build_world(seed)
    predictor = QoSPredictionService(AMFConfig.for_response_time(), rng=seed)
    sla = SLA(attribute="response_time", threshold=SLA_THRESHOLD)
    engine = ExecutionEngine(
        user_id=USER_ID,
        workflow=workflow,
        registry=registry,
        predictor=predictor,
        policy=policy,
        oracle=oracle,
        sla=sla,
        users=UserManager(),
    )
    # Seed the predictor with other users' observations (the collaborative
    # part: user 0 benefits from QoS data uploaded by users 1..29).
    rng = np.random.default_rng(seed)
    for __ in range(3000):
        u = int(rng.integers(1, 30))
        s = int(rng.integers(0, data.n_services))
        t = float(rng.random() * data.slice_seconds)
        predictor.report_observation(u, s, oracle.value(u, s, t), t)

    interval = data.slice_seconds * data.n_slices / EXECUTIONS
    engine.run(start=0.0, interval=interval, count=EXECUTIONS)
    return engine.stats


def main() -> None:
    sla = SLA(attribute="response_time", threshold=SLA_THRESHOLD)
    control = run(NoAdaptation())
    adaptive = run(ThresholdPolicy(sla, improvement_margin=0.1))

    print(f"workflow of {N_TASKS} tasks, {CANDIDATES_PER_TASK} candidates each, "
          f"{EXECUTIONS} executions, SLA threshold {SLA_THRESHOLD}s/invocation\n")
    print(f"{'policy':>14} | {'mean exec time':>14} | {'SLA violations':>14} | {'adaptations':>11}")
    for name, stats in (("no adaptation", control), ("threshold+AMF", adaptive)):
        print(f"{name:>14} | {stats.mean_execution_time:>13.2f}s | "
              f"{stats.violation_rate:>13.1%} | {stats.adaptations:>11}")

    for action in adaptive.actions[:5]:
        print(f"  adapted {action.task_name}: service {action.old_service_id} -> "
              f"{action.new_service_id} at t={action.decided_at:.0f}s")
    if len(adaptive.actions) > 5:
        print(f"  ... and {len(adaptive.actions) - 5} more")


if __name__ == "__main__":
    main()
