"""Operating the prediction service: persistence, traces, and confidence.

Three production concerns the library covers beyond the paper:

1. **Model persistence** — snapshot a live AMF model to disk and restore it
   after a restart with identical predictions.
2. **Trace replay** — record the observation stream as CSV; retraining from
   the loaded trace is bit-identical to the original run.
3. **Prediction confidence** — the per-entity error trackers that drive
   AMF's adaptive weights double as a calibrated per-prediction
   uncertainty signal.

Run:  python examples/persistence_and_replay.py
"""

import os
import tempfile

import numpy as np

from repro.core import (
    AdaptiveMatrixFactorization,
    AMFConfig,
    StreamTrainer,
    load_model,
    save_model,
)
from repro.datasets import generate_dataset, train_test_split_matrix
from repro.datasets.stream import stream_from_matrix
from repro.datasets.trace import load_stream, save_stream
from repro.metrics.calibration import calibration_report


def main() -> None:
    data = generate_dataset(n_users=50, n_services=120, n_slices=1, seed=8)
    train, test = train_test_split_matrix(data.slice(0), 0.3, rng=8)
    stream = stream_from_matrix(train, rng=8)

    workdir = tempfile.mkdtemp(prefix="repro-demo-")
    trace_path = os.path.join(workdir, "observations.csv")
    model_path = os.path.join(workdir, "amf.npz")

    # 1. Record the stream while training on it.
    save_stream(stream, trace_path)
    model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=8)
    model.ensure_user(data.n_users - 1)
    model.ensure_service(data.n_services - 1)
    StreamTrainer(model).process(stream)
    print(f"trained on {len(stream)} observations; trace at {trace_path}")

    # 2. Snapshot and restore.
    save_model(model, model_path)
    restored = load_model(model_path, rng=99)
    identical = np.array_equal(model.predict_matrix(), restored.predict_matrix())
    print(f"snapshot restored from {model_path}; predictions identical: {identical}")

    # 3. Replay the trace into a fresh model: same results, every time.
    replayed = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=8)
    replayed.ensure_user(data.n_users - 1)
    replayed.ensure_service(data.n_services - 1)
    StreamTrainer(replayed).process(load_stream(trace_path))
    print(
        "trace replay reproduces training: "
        f"{np.array_equal(model.predict_matrix(), replayed.predict_matrix())}"
    )

    # 4. Confidence: do the error trackers know where the model is weak?
    rows, cols = test.observed_indices()
    report = calibration_report(model, rows, cols, test.values[rows, cols])
    print()
    print(report.to_text())


if __name__ == "__main__":
    main()
