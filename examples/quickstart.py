"""Quickstart: train AMF on a QoS stream and predict unseen values.

Generates a small WS-DREAM-like dataset, keeps 20% of one slice's entries as
an observed training stream (the paper's evaluation protocol), trains the
Adaptive Matrix Factorization model online, and scores the held-out entries
with the paper's three metrics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AdaptiveMatrixFactorization, AMFConfig, StreamTrainer
from repro.datasets import generate_dataset, train_test_split_matrix
from repro.datasets.stream import stream_from_matrix
from repro.metrics import score_all


def main() -> None:
    # 1. Data: a statistical twin of the paper's Web-service QoS dataset.
    data = generate_dataset(n_users=80, n_services=200, n_slices=1, seed=0)
    matrix = data.slice(0)
    print(f"dataset: {matrix.n_users} users x {matrix.n_services} services, "
          f"mean RT {matrix.observed_values().mean():.2f}s")

    # 2. Simulate sparsity: each user has observed ~20% of the services.
    train, test = train_test_split_matrix(matrix, train_density=0.2, rng=0)
    print(f"training on {train.mask.sum()} observed entries "
          f"({train.density:.0%} density), testing on {test.mask.sum()}")

    # 3. Train online: observations arrive as a randomized stream.
    model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
    trainer = StreamTrainer(model)
    report = trainer.process(stream_from_matrix(train, rng=0))
    print(f"trained: {report.arrivals} arrivals + {report.replays} replay steps "
          f"in {report.epochs} epochs ({report.wall_seconds:.2f}s), "
          f"converged={report.converged}")

    # 4. Predict a single unseen (user, service) pair...
    rows, cols = test.observed_indices()
    u, s = int(rows[0]), int(cols[0])
    print(f"user {u} on service {s}: predicted {model.predict(u, s):.3f}s, "
          f"actual {test.values[u, s]:.3f}s")

    # ...and score the whole held-out set.
    predicted = model.predict_matrix()[rows, cols]
    actual = test.values[rows, cols]
    metrics = score_all(predicted, actual)
    print("held-out accuracy: "
          + ", ".join(f"{k}={v:.3f}" for k, v in metrics.items()))


if __name__ == "__main__":
    main()
